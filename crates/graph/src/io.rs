//! Minimal text serialisation for graphs.
//!
//! Two formats:
//!
//! * the **native** format ([`to_string`] / [`from_str`]): first line
//!   `n <node-count>`, then one line per node `l <node-index> <label>`
//!   (omitted when the labelling is the identity), then one line per
//!   edge `e <u> <v>` (node indices);
//! * the **plain edgelist** format ([`to_edgelist`] /
//!   [`from_edgelist`]): one `u v` pair per line, the de-facto exchange
//!   format of public topology datasets, so real networks can be
//!   ingested without conversion.
//!
//! In both, lines beginning with `#` are comments and blank lines are
//! ignored. This keeps fixtures diff-able without pulling in a
//! serialisation framework.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::labels::{Label, NodeId};

/// Serialises a graph to the textual format described in the module docs.
pub fn to_string(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("n {}\n", g.node_count()));
    let identity = g.nodes().all(|u| g.label(u).value() == u.0);
    if !identity {
        for u in g.nodes() {
            out.push_str(&format!("l {} {}\n", u.0, g.label(u).value()));
        }
    }
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u.0, v.0));
    }
    out
}

/// Parses the textual format produced by [`to_string`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input, and the usual
/// construction errors for duplicate labels/edges or self-loops.
pub fn from_str(s: &str) -> Result<Graph, GraphError> {
    let mut n: Option<usize> = None;
    let mut labels: Vec<(u32, u32)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, raw) in s.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a token");
        let parse_err = |message: &str| GraphError::Parse {
            line: line_no,
            message: message.to_string(),
        };
        let mut two = || -> Result<(u32, u32), GraphError> {
            let a = parts
                .next()
                .ok_or_else(|| parse_err("missing first field"))?
                .parse::<u32>()
                .map_err(|_| parse_err("first field is not an integer"))?;
            let b = parts
                .next()
                .ok_or_else(|| parse_err("missing second field"))?
                .parse::<u32>()
                .map_err(|_| parse_err("second field is not an integer"))?;
            Ok((a, b))
        };
        match tag {
            "n" => {
                let count = parts
                    .next()
                    .ok_or_else(|| parse_err("missing node count"))?
                    .parse::<usize>()
                    .map_err(|_| parse_err("node count is not an integer"))?;
                n = Some(count);
            }
            "l" => labels.push(two()?),
            "e" => edges.push(two()?),
            _ => return Err(parse_err("unknown line tag")),
        }
    }
    let n = n.ok_or(GraphError::Parse {
        line: 0,
        message: "missing 'n' header".to_string(),
    })?;
    let mut label_of: Vec<u32> = (0..n as u32).collect();
    for (idx, lab) in labels {
        if (idx as usize) >= n {
            return Err(GraphError::UnknownNode(NodeId(idx)));
        }
        label_of[idx as usize] = lab;
    }
    let mut b = GraphBuilder::new();
    for &l in &label_of {
        b.add_node(Label(l))?;
    }
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v))?;
    }
    Ok(b.build())
}

/// Serialises a graph as a plain edgelist: one `u v` line per edge.
///
/// The edgelist format records topology only: labels are dropped
/// (parsing yields the identity labelling) and isolated nodes — which
/// cannot occur in the paper's connected model with `n >= 2` — are not
/// representable. Each edge appears once as `min max`.
pub fn to_edgelist(g: &Graph) -> String {
    let mut out = String::new();
    for (u, v) in g.edges() {
        out.push_str(&format!("{} {}\n", u.0, v.0));
    }
    out
}

/// Largest edgelist node id accepted: ids up to `u32::MAX - 1`, so the
/// inferred node count (`max id + 1`) always fits in `u32`.
pub const MAX_EDGELIST_ID: u64 = u32::MAX as u64 - 1;

/// Parses a plain edgelist: one `u v` pair per line, `#` comments and
/// blank lines tolerated anywhere. The node count is inferred as the
/// largest endpoint plus one, labels are the identity, and duplicate
/// edges (common in datasets that list both directions) are deduped
/// silently. Use [`from_edgelist_strict`] to reject duplicates instead.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] (with the offending line number) on
/// non-integer fields, a missing second field, or trailing tokens;
/// [`GraphError::EdgelistSelfLoop`] on a `u u` line; and
/// [`GraphError::EdgelistIdOutOfRange`] when an endpoint exceeds
/// [`MAX_EDGELIST_ID`] — all carrying the offending line number.
pub fn from_edgelist(s: &str) -> Result<Graph, GraphError> {
    parse_edgelist(s, false)
}

/// Like [`from_edgelist`], but a repeated edge — in either direction —
/// is a [`GraphError::EdgelistDuplicateEdge`] carrying the line number
/// of the repeat, instead of being deduped silently. Use this for
/// curated fixtures where a duplicate line indicates a corrupt file
/// rather than a both-directions dataset convention.
pub fn from_edgelist_strict(s: &str) -> Result<Graph, GraphError> {
    parse_edgelist(s, true)
}

/// Chunk size, in bytes, of the fixed read buffer used by
/// [`from_edgelist_reader`]. Memory use of the reader path is this
/// buffer plus the carry for one partial line plus the edge set itself
/// — never the whole file text.
pub const EDGELIST_CHUNK_BYTES: usize = 64 * 1024;

/// Streams a plain edgelist from any [`Read`](std::io::Read) source —
/// a file, a socket, a decompressor — without materialising the file
/// text in memory. Reads [`EDGELIST_CHUNK_BYTES`]-sized chunks into a
/// fixed buffer, splits complete lines out byte-wise (so multi-byte
/// sequences straddling a chunk boundary are never mis-decoded), and
/// feeds them to the same incremental parser as [`from_edgelist`]; the
/// two paths accept byte-identical inputs. Duplicate edges are deduped
/// silently, as in the lenient in-memory parser.
///
/// # Errors
///
/// Everything [`from_edgelist`] returns, plus: an io error from the
/// underlying reader surfaces as [`GraphError::Parse`] carrying the
/// number of the line being read and a `read error: …` message, and a
/// line that is not valid UTF-8 is a [`GraphError::Parse`] on that
/// line.
pub fn from_edgelist_reader<R: std::io::Read>(mut reader: R) -> Result<Graph, GraphError> {
    let mut parser = EdgelistParser::new(false);
    let mut chunk = vec![0u8; EDGELIST_CHUNK_BYTES];
    // Bytes of an incomplete trailing line carried between chunks.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let got = reader.read(&mut chunk).map_err(|e| GraphError::Parse {
            line: parser.next_line(),
            message: format!("read error: {e}"),
        })?;
        if got == 0 {
            break;
        }
        let mut rest = &chunk[..got];
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..];
            if carry.is_empty() {
                parser.feed_bytes(head)?;
            } else {
                carry.extend_from_slice(head);
                let line = std::mem::take(&mut carry);
                parser.feed_bytes(&line)?;
            }
        }
        carry.extend_from_slice(rest);
    }
    if !carry.is_empty() {
        let line = std::mem::take(&mut carry);
        parser.feed_bytes(&line)?;
    }
    parser.finish()
}

fn parse_edgelist(s: &str, strict: bool) -> Result<Graph, GraphError> {
    let mut parser = EdgelistParser::new(strict);
    for raw in s.lines() {
        parser.feed(raw)?;
    }
    parser.finish()
}

/// Incremental core shared by the in-memory and streaming edgelist
/// parsers: feed lines one at a time, then [`finish`](Self::finish)
/// into a graph. Both [`from_edgelist`] and [`from_edgelist_reader`]
/// drive this, so the two paths cannot drift in what they accept.
struct EdgelistParser {
    strict: bool,
    edges: Vec<(u32, u32)>,
    seen: std::collections::BTreeSet<(u32, u32)>,
    max_id: Option<u32>,
    /// Lines fed so far; errors on the line being fed report `line`
    /// after the increment, i.e. 1-based.
    line: usize,
}

impl EdgelistParser {
    fn new(strict: bool) -> EdgelistParser {
        EdgelistParser {
            strict,
            edges: Vec::new(),
            seen: std::collections::BTreeSet::new(),
            max_id: None,
            line: 0,
        }
    }

    /// The 1-based number of the next line to be fed — where an io
    /// error interrupting the stream is attributed.
    fn next_line(&self) -> usize {
        self.line + 1
    }

    /// Feeds one raw line (no trailing newline) as bytes, rejecting
    /// invalid UTF-8 with the line's number.
    fn feed_bytes(&mut self, raw: &[u8]) -> Result<(), GraphError> {
        match std::str::from_utf8(raw) {
            Ok(s) => self.feed(s),
            Err(_) => {
                self.line += 1;
                Err(GraphError::Parse {
                    line: self.line,
                    message: "line is not valid UTF-8".to_string(),
                })
            }
        }
    }

    /// Feeds one raw line (no trailing newline).
    fn feed(&mut self, raw: &str) -> Result<(), GraphError> {
        self.line += 1;
        let line_no = self.line;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        let parse_err = |message: &str| GraphError::Parse {
            line: line_no,
            message: message.to_string(),
        };
        let endpoint = |token: Option<&str>, which: &str| -> Result<u32, GraphError> {
            let id = token
                .ok_or_else(|| parse_err(&format!("missing {which} endpoint")))?
                .parse::<u64>()
                .map_err(|_| parse_err(&format!("{which} endpoint is not an integer")))?;
            if id > MAX_EDGELIST_ID {
                return Err(GraphError::EdgelistIdOutOfRange { id, line: line_no });
            }
            Ok(id as u32)
        };
        let mut parts = line.split_whitespace();
        let u = endpoint(parts.next(), "first")?;
        let v = endpoint(parts.next(), "second")?;
        if parts.next().is_some() {
            return Err(parse_err("trailing tokens after edge"));
        }
        if u == v {
            return Err(GraphError::EdgelistSelfLoop {
                node: NodeId(u),
                line: line_no,
            });
        }
        let edge = if u < v { (u, v) } else { (v, u) };
        if !self.seen.insert(edge) {
            if self.strict {
                return Err(GraphError::EdgelistDuplicateEdge {
                    u: NodeId(edge.0),
                    v: NodeId(edge.1),
                    line: line_no,
                });
            }
            return Ok(());
        }
        self.max_id = Some(self.max_id.map_or(u.max(v), |m| m.max(u).max(v)));
        self.edges.push(edge);
        Ok(())
    }

    fn finish(self) -> Result<Graph, GraphError> {
        let mut edges = self.edges;
        edges.sort_unstable();
        let n = self.max_id.map_or(0, |m| m as usize + 1);
        let mut b = GraphBuilder::with_identity_labels(n);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v))?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::permute;
    use crate::rng::DetRng;

    #[test]
    fn round_trip_identity_labels() {
        let g = generators::cycle(7);
        let s = to_string(&g);
        assert!(!s.contains("\nl "));
        let h = from_str(&s).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn round_trip_custom_labels() {
        let g = permute::reverse_labels(&generators::path(5));
        let s = to_string(&g);
        assert!(s.contains("l 0 4"));
        let h = from_str(&s).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = from_str("# fixture\nn 2\n\ne 0 1\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = from_str("n 2\nx 0 1\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(from_str("e 0 1\n"), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn edgelist_round_trips_connected_graphs() {
        let mut rng = DetRng::seed_from_u64(0xED9E);
        for n in [2usize, 5, 17, 40] {
            let g = generators::random_connected(n, n / 3, &mut rng);
            let s = to_edgelist(&g);
            let h = from_edgelist(&s).unwrap();
            assert_eq!(g, h, "n = {n}");
        }
    }

    #[test]
    fn edgelist_tolerates_comments_blanks_and_duplicates() {
        let s = "# AS-level topology excerpt\n\n0 1\n1 0\n\n  2 1 \n# trailing comment\n";
        let g = from_edgelist(s).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn edgelist_errors_are_typed() {
        assert!(matches!(
            from_edgelist("0 x\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_edgelist("0 1 2\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_edgelist("0 1\n3\n"),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn edgelist_self_loop_carries_line_number() {
        assert_eq!(
            from_edgelist("0 1\n\n# comment\n4 4\n").unwrap_err(),
            GraphError::EdgelistSelfLoop {
                node: NodeId(4),
                line: 4
            }
        );
    }

    #[test]
    fn edgelist_overflowing_ids_carry_line_number() {
        // Larger than u64: not even an integer in range.
        assert!(matches!(
            from_edgelist("0 99999999999999999999\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        // Fits u64 but exceeds the supported node-id range.
        let big = u64::from(u32::MAX);
        assert_eq!(
            from_edgelist(&format!("0 1\n{big} 0\n")).unwrap_err(),
            GraphError::EdgelistIdOutOfRange { id: big, line: 2 }
        );
    }

    #[test]
    fn strict_edgelist_rejects_duplicates_with_line_number() {
        // Same direction and reversed direction both count.
        assert_eq!(
            from_edgelist_strict("0 1\n1 2\n0 1\n").unwrap_err(),
            GraphError::EdgelistDuplicateEdge {
                u: NodeId(0),
                v: NodeId(1),
                line: 3
            }
        );
        assert_eq!(
            from_edgelist_strict("0 1\n1 0\n").unwrap_err(),
            GraphError::EdgelistDuplicateEdge {
                u: NodeId(0),
                v: NodeId(1),
                line: 2
            }
        );
        // Clean input parses identically to the lenient path.
        let s = "0 1\n1 2\n2 0\n";
        assert_eq!(from_edgelist_strict(s).unwrap(), from_edgelist(s).unwrap());
    }

    #[test]
    fn empty_edgelist_is_the_empty_graph() {
        let g = from_edgelist("# nothing here\n").unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    /// A reader that doles out one byte per `read` call, forcing every
    /// line to straddle chunk boundaries in the streaming parser.
    struct OneByteReader<'a>(&'a [u8]);

    impl std::io::Read for OneByteReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.split_first() {
                Some((&b, rest)) if !buf.is_empty() => {
                    buf[0] = b;
                    self.0 = rest;
                    Ok(1)
                }
                _ => Ok(0),
            }
        }
    }

    /// A reader that yields its prefix, then fails — a truncated file
    /// or dropped connection.
    struct TruncatedReader<'a>(&'a [u8]);

    impl std::io::Read for TruncatedReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream truncated",
                ));
            }
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn reader_round_trips_connected_graphs() {
        let mut rng = DetRng::seed_from_u64(0xED9E);
        for n in [2usize, 5, 17, 40] {
            let g = generators::random_connected(n, n / 3, &mut rng);
            let s = to_edgelist(&g);
            let h = from_edgelist_reader(std::io::Cursor::new(s.as_bytes())).unwrap();
            assert_eq!(g, h, "n = {n}");
        }
    }

    #[test]
    fn reader_matches_in_memory_parser_across_chunk_boundaries() {
        // Comments, blanks, duplicates, and a final line with no
        // trailing newline — fed one byte at a time so every line is
        // assembled from the carry buffer.
        let s = "# comment\n\n0 1\n1 0\n  2 1 \n3 2";
        let streamed = from_edgelist_reader(OneByteReader(s.as_bytes())).unwrap();
        assert_eq!(streamed, from_edgelist(s).unwrap());
        assert_eq!(streamed.node_count(), 4);
        assert_eq!(streamed.edge_count(), 3);
    }

    #[test]
    fn reader_errors_match_the_in_memory_parser() {
        for bad in ["0 x\n", "0 1 2\n", "0 1\n3\n", "0 1\n4 4\n"] {
            assert_eq!(
                from_edgelist_reader(std::io::Cursor::new(bad.as_bytes())).unwrap_err(),
                from_edgelist(bad).unwrap_err(),
                "input {bad:?}"
            );
        }
    }

    #[test]
    fn reader_truncation_carries_the_interrupted_line_number() {
        // Two full lines arrive before the stream dies mid-read.
        let err = from_edgelist_reader(TruncatedReader(b"0 1\n1 2\n")).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3, "io error lands on the line being read");
                assert!(message.contains("read error"), "message: {message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reader_rejects_invalid_utf8_with_line_number() {
        let err = from_edgelist_reader(std::io::Cursor::new(&b"0 1\n\xff\xfe\n"[..])).unwrap_err();
        assert_eq!(
            err,
            GraphError::Parse {
                line: 2,
                message: "line is not valid UTF-8".to_string()
            }
        );
    }
}
