//! Minimal text serialisation for graphs.
//!
//! Two formats:
//!
//! * the **native** format ([`to_string`] / [`from_str`]): first line
//!   `n <node-count>`, then one line per node `l <node-index> <label>`
//!   (omitted when the labelling is the identity), then one line per
//!   edge `e <u> <v>` (node indices);
//! * the **plain edgelist** format ([`to_edgelist`] /
//!   [`from_edgelist`]): one `u v` pair per line, the de-facto exchange
//!   format of public topology datasets, so real networks can be
//!   ingested without conversion.
//!
//! In both, lines beginning with `#` are comments and blank lines are
//! ignored. This keeps fixtures diff-able without pulling in a
//! serialisation framework.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::labels::{Label, NodeId};

/// Serialises a graph to the textual format described in the module docs.
pub fn to_string(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("n {}\n", g.node_count()));
    let identity = g.nodes().all(|u| g.label(u).value() == u.0);
    if !identity {
        for u in g.nodes() {
            out.push_str(&format!("l {} {}\n", u.0, g.label(u).value()));
        }
    }
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u.0, v.0));
    }
    out
}

/// Parses the textual format produced by [`to_string`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input, and the usual
/// construction errors for duplicate labels/edges or self-loops.
pub fn from_str(s: &str) -> Result<Graph, GraphError> {
    let mut n: Option<usize> = None;
    let mut labels: Vec<(u32, u32)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, raw) in s.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a token");
        let parse_err = |message: &str| GraphError::Parse {
            line: line_no,
            message: message.to_string(),
        };
        let mut two = || -> Result<(u32, u32), GraphError> {
            let a = parts
                .next()
                .ok_or_else(|| parse_err("missing first field"))?
                .parse::<u32>()
                .map_err(|_| parse_err("first field is not an integer"))?;
            let b = parts
                .next()
                .ok_or_else(|| parse_err("missing second field"))?
                .parse::<u32>()
                .map_err(|_| parse_err("second field is not an integer"))?;
            Ok((a, b))
        };
        match tag {
            "n" => {
                let count = parts
                    .next()
                    .ok_or_else(|| parse_err("missing node count"))?
                    .parse::<usize>()
                    .map_err(|_| parse_err("node count is not an integer"))?;
                n = Some(count);
            }
            "l" => labels.push(two()?),
            "e" => edges.push(two()?),
            _ => return Err(parse_err("unknown line tag")),
        }
    }
    let n = n.ok_or(GraphError::Parse {
        line: 0,
        message: "missing 'n' header".to_string(),
    })?;
    let mut label_of: Vec<u32> = (0..n as u32).collect();
    for (idx, lab) in labels {
        if (idx as usize) >= n {
            return Err(GraphError::UnknownNode(NodeId(idx)));
        }
        label_of[idx as usize] = lab;
    }
    let mut b = GraphBuilder::new();
    for &l in &label_of {
        b.add_node(Label(l))?;
    }
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v))?;
    }
    Ok(b.build())
}

/// Serialises a graph as a plain edgelist: one `u v` line per edge.
///
/// The edgelist format records topology only: labels are dropped
/// (parsing yields the identity labelling) and isolated nodes — which
/// cannot occur in the paper's connected model with `n >= 2` — are not
/// representable. Each edge appears once as `min max`.
pub fn to_edgelist(g: &Graph) -> String {
    let mut out = String::new();
    for (u, v) in g.edges() {
        out.push_str(&format!("{} {}\n", u.0, v.0));
    }
    out
}

/// Largest edgelist node id accepted: ids up to `u32::MAX - 1`, so the
/// inferred node count (`max id + 1`) always fits in `u32`.
pub const MAX_EDGELIST_ID: u64 = u32::MAX as u64 - 1;

/// Parses a plain edgelist: one `u v` pair per line, `#` comments and
/// blank lines tolerated anywhere. The node count is inferred as the
/// largest endpoint plus one, labels are the identity, and duplicate
/// edges (common in datasets that list both directions) are deduped
/// silently. Use [`from_edgelist_strict`] to reject duplicates instead.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] (with the offending line number) on
/// non-integer fields, a missing second field, or trailing tokens;
/// [`GraphError::EdgelistSelfLoop`] on a `u u` line; and
/// [`GraphError::EdgelistIdOutOfRange`] when an endpoint exceeds
/// [`MAX_EDGELIST_ID`] — all carrying the offending line number.
pub fn from_edgelist(s: &str) -> Result<Graph, GraphError> {
    parse_edgelist(s, false)
}

/// Like [`from_edgelist`], but a repeated edge — in either direction —
/// is a [`GraphError::EdgelistDuplicateEdge`] carrying the line number
/// of the repeat, instead of being deduped silently. Use this for
/// curated fixtures where a duplicate line indicates a corrupt file
/// rather than a both-directions dataset convention.
pub fn from_edgelist_strict(s: &str) -> Result<Graph, GraphError> {
    parse_edgelist(s, true)
}

fn parse_edgelist(s: &str, strict: bool) -> Result<Graph, GraphError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut seen: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut max_id: Option<u32> = None;
    for (idx, raw) in s.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parse_err = |message: &str| GraphError::Parse {
            line: line_no,
            message: message.to_string(),
        };
        let endpoint = |token: Option<&str>, which: &str| -> Result<u32, GraphError> {
            let id = token
                .ok_or_else(|| parse_err(&format!("missing {which} endpoint")))?
                .parse::<u64>()
                .map_err(|_| parse_err(&format!("{which} endpoint is not an integer")))?;
            if id > MAX_EDGELIST_ID {
                return Err(GraphError::EdgelistIdOutOfRange { id, line: line_no });
            }
            Ok(id as u32)
        };
        let mut parts = line.split_whitespace();
        let u = endpoint(parts.next(), "first")?;
        let v = endpoint(parts.next(), "second")?;
        if parts.next().is_some() {
            return Err(parse_err("trailing tokens after edge"));
        }
        if u == v {
            return Err(GraphError::EdgelistSelfLoop {
                node: NodeId(u),
                line: line_no,
            });
        }
        let edge = if u < v { (u, v) } else { (v, u) };
        if !seen.insert(edge) {
            if strict {
                return Err(GraphError::EdgelistDuplicateEdge {
                    u: NodeId(edge.0),
                    v: NodeId(edge.1),
                    line: line_no,
                });
            }
            continue;
        }
        max_id = Some(max_id.map_or(u.max(v), |m| m.max(u).max(v)));
        edges.push(edge);
    }
    edges.sort_unstable();
    let n = max_id.map_or(0, |m| m as usize + 1);
    let mut b = GraphBuilder::with_identity_labels(n);
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::permute;
    use crate::rng::DetRng;

    #[test]
    fn round_trip_identity_labels() {
        let g = generators::cycle(7);
        let s = to_string(&g);
        assert!(!s.contains("\nl "));
        let h = from_str(&s).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn round_trip_custom_labels() {
        let g = permute::reverse_labels(&generators::path(5));
        let s = to_string(&g);
        assert!(s.contains("l 0 4"));
        let h = from_str(&s).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = from_str("# fixture\nn 2\n\ne 0 1\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = from_str("n 2\nx 0 1\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(from_str("e 0 1\n"), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn edgelist_round_trips_connected_graphs() {
        let mut rng = DetRng::seed_from_u64(0xED9E);
        for n in [2usize, 5, 17, 40] {
            let g = generators::random_connected(n, n / 3, &mut rng);
            let s = to_edgelist(&g);
            let h = from_edgelist(&s).unwrap();
            assert_eq!(g, h, "n = {n}");
        }
    }

    #[test]
    fn edgelist_tolerates_comments_blanks_and_duplicates() {
        let s = "# AS-level topology excerpt\n\n0 1\n1 0\n\n  2 1 \n# trailing comment\n";
        let g = from_edgelist(s).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn edgelist_errors_are_typed() {
        assert!(matches!(
            from_edgelist("0 x\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_edgelist("0 1 2\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_edgelist("0 1\n3\n"),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn edgelist_self_loop_carries_line_number() {
        assert_eq!(
            from_edgelist("0 1\n\n# comment\n4 4\n").unwrap_err(),
            GraphError::EdgelistSelfLoop {
                node: NodeId(4),
                line: 4
            }
        );
    }

    #[test]
    fn edgelist_overflowing_ids_carry_line_number() {
        // Larger than u64: not even an integer in range.
        assert!(matches!(
            from_edgelist("0 99999999999999999999\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        // Fits u64 but exceeds the supported node-id range.
        let big = u64::from(u32::MAX);
        assert_eq!(
            from_edgelist(&format!("0 1\n{big} 0\n")).unwrap_err(),
            GraphError::EdgelistIdOutOfRange { id: big, line: 2 }
        );
    }

    #[test]
    fn strict_edgelist_rejects_duplicates_with_line_number() {
        // Same direction and reversed direction both count.
        assert_eq!(
            from_edgelist_strict("0 1\n1 2\n0 1\n").unwrap_err(),
            GraphError::EdgelistDuplicateEdge {
                u: NodeId(0),
                v: NodeId(1),
                line: 3
            }
        );
        assert_eq!(
            from_edgelist_strict("0 1\n1 0\n").unwrap_err(),
            GraphError::EdgelistDuplicateEdge {
                u: NodeId(0),
                v: NodeId(1),
                line: 2
            }
        );
        // Clean input parses identically to the lenient path.
        let s = "0 1\n1 2\n2 0\n";
        assert_eq!(from_edgelist_strict(s).unwrap(), from_edgelist(s).unwrap());
    }

    #[test]
    fn empty_edgelist_is_the_empty_graph() {
        let g = from_edgelist("# nothing here\n").unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
