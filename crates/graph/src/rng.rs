//! A small, self-contained deterministic PRNG.
//!
//! The repo's randomized suites only need *reproducible* pseudo-random
//! streams — cryptographic quality is irrelevant, and an external
//! dependency is an offline-build liability. [`DetRng`] is a
//! xoshiro256\*\* generator (Blackman & Vigna) whose 256-bit state is
//! expanded from a single `u64` seed with splitmix64, the combination
//! the xoshiro authors themselves recommend for seeding.
//!
//! The API mirrors the subset of `rand` the repo used: seeding from a
//! `u64`, uniform ranges, Bernoulli draws, unit-interval floats, and
//! Fisher–Yates shuffles.
//!
//! ```
//! use locality_graph::rng::DetRng;
//!
//! let mut rng = DetRng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//!
//! // Same seed, same stream — always.
//! let mut a = DetRng::seed_from_u64(7);
//! let mut b = DetRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// Deterministic xoshiro256\*\* generator seeded via splitmix64.
///
/// Every randomized test, generator, and experiment in the workspace
/// draws from this type, so a given seed reproduces the exact same
/// graphs and routes on every platform and toolchain.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Builds a generator whose full 256-bit state is derived from
    /// `seed` by four rounds of splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// The next raw 64-bit output (xoshiro256\*\* scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from a half-open or inclusive integer range.
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    ///
    /// ```
    /// use locality_graph::rng::DetRng;
    /// let mut rng = DetRng::seed_from_u64(0);
    /// let x = rng.gen_range(10..20usize);
    /// assert!((10..20).contains(&x));
    /// ```
    #[inline]
    pub fn gen_range<T, R: RangeSample<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift reduction).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// In-place Fisher–Yates shuffle.
    ///
    /// ```
    /// use locality_graph::rng::DetRng;
    /// let mut rng = DetRng::seed_from_u64(3);
    /// let mut v: Vec<u32> = (0..10).collect();
    /// rng.shuffle(&mut v);
    /// let mut sorted = v.clone();
    /// sorted.sort_unstable();
    /// assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    /// ```
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer ranges [`DetRng::gen_range`] can sample from. The type
/// parameter `T` is the sampled value's type, so inference can flow
/// from how the result is used back to the range's element type.
pub trait RangeSample<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut DetRng) -> T;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl RangeSample<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, usize);

impl RangeSample<u64> for std::ops::Range<u64> {
    #[inline]
    fn sample(self, rng: &mut DetRng) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.below(self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(123);
        let mut b = DetRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // State {1,2,3,4} must produce the published xoshiro256** outputs.
        let mut rng = DetRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = DetRng::seed_from_u64(99);
        for _ in 0..1000 {
            let x = rng.gen_range(3..16usize);
            assert!((3..16).contains(&x));
            let y = rng.gen_range(0..=6u32);
            assert!(y <= 6);
            let z = rng.gen_range(5..6u8);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And with 50! arrangements, a fixed shuffle is all but surely nontrivial.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(0);
        rng.gen_range(5..5usize);
    }
}
