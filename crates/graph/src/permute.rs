//! Adversarial relabelling (§1.1).
//!
//! The paper assumes vertex labels are independent of the topology: a
//! routing algorithm must succeed under *any* permutation of the labels.
//! These helpers rewrite a graph's labels while preserving structure, so
//! test suites can check label-permutation robustness.

use crate::rng::DetRng;

use crate::graph::{Graph, GraphBuilder};
use crate::labels::{Label, NodeId};

/// Returns a structurally identical graph whose node `i` carries label
/// `perm[i]` instead of its original label.
///
/// # Panics
///
/// Panics if `perm` has the wrong length or contains duplicates.
pub fn relabel(g: &Graph, perm: &[Label]) -> Graph {
    assert_eq!(perm.len(), g.node_count(), "permutation length mismatch");
    let mut b = GraphBuilder::new();
    for &l in perm {
        b.add_node(l).expect("labels in a permutation are unique");
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v).expect("relabelling preserves simplicity");
    }
    b.build()
}

/// Applies a uniformly random permutation of the labels `0..n`.
pub fn random_relabel(g: &Graph, rng: &mut DetRng) -> Graph {
    let mut labels: Vec<Label> = (0..g.node_count() as u32).map(Label).collect();
    rng.shuffle(&mut labels);
    relabel(g, &labels)
}

/// Reverses the identity labelling (`i -> n-1-i`): a cheap deterministic
/// adversarial permutation that flips every rank comparison.
pub fn reverse_labels(g: &Graph) -> Graph {
    let n = g.node_count() as u32;
    let labels: Vec<Label> = (0..n).map(|i| Label(n - 1 - i)).collect();
    relabel(g, &labels)
}

/// The node of `g2` playing the role that `u` plays in `g1`, under the
/// convention that both graphs were produced by [`relabel`]-family calls
/// from the same base graph (node ids are preserved by relabelling).
pub fn same_node(_g1: &Graph, u: NodeId) -> NodeId {
    u
}

/// Returns an isomorphic copy in which old node `u` occupies slot
/// `perm[u.index()]` and *keeps its label*; edges map through `perm`.
///
/// This is the complement of [`relabel`]: there the labels move and the
/// numbering stays, here the internal numbering moves and each
/// topological role keeps its label. Since the paper's model lets a
/// router see only labels (§1.1), a conforming router must behave
/// *identically* on both graphs — making this the equivariance probe
/// for hidden dependence on node numbering, memory layout, or
/// container iteration order.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn permute_nodes(g: &Graph, perm: &[NodeId]) -> Graph {
    assert_eq!(perm.len(), g.node_count(), "permutation length mismatch");
    let mut slots: Vec<(NodeId, Label)> =
        g.nodes().map(|u| (perm[u.index()], g.label(u))).collect();
    slots.sort_unstable_by_key(|&(slot, _)| slot);
    assert!(
        slots
            .iter()
            .enumerate()
            .all(|(i, &(slot, _))| slot.index() == i),
        "perm must be a permutation of 0..n"
    );
    let mut b = GraphBuilder::new();
    for (_, l) in slots {
        b.add_node(l)
            .expect("a permuted node keeps its unique label");
    }
    for (u, v) in g.edges() {
        b.add_edge(perm[u.index()], perm[v.index()])
            .expect("a node permutation preserves simplicity");
    }
    b.build()
}

/// Applies a uniformly random node permutation; returns the permuted
/// graph together with the old-id to new-id map.
pub fn random_permute_nodes(g: &Graph, rng: &mut DetRng) -> (Graph, Vec<NodeId>) {
    let mut perm: Vec<NodeId> = (0..g.node_count() as u32).map(NodeId).collect();
    rng.shuffle(&mut perm);
    let h = permute_nodes(g, &perm);
    (h, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::DetRng;
    use crate::traversal;

    #[test]
    fn relabel_preserves_structure() {
        let g = generators::cycle(6);
        let h = reverse_labels(&g);
        assert_eq!(h.node_count(), 6);
        assert_eq!(h.edge_count(), 6);
        assert_eq!(h.label(NodeId(0)), Label(5));
        assert!(h.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(traversal::diameter(&h), traversal::diameter(&g));
    }

    #[test]
    fn random_relabel_is_permutation() {
        let g = generators::path(10);
        let mut rng = DetRng::seed_from_u64(1);
        let h = random_relabel(&g, &mut rng);
        let mut labels: Vec<u32> = h.nodes().map(|u| h.label(u).value()).collect();
        labels.sort_unstable();
        assert_eq!(labels, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn relabel_rejects_wrong_length() {
        let g = generators::path(3);
        relabel(&g, &[Label(0)]);
    }

    #[test]
    fn permute_nodes_preserves_labels_per_role() {
        let g = generators::lollipop(5, 3);
        let mut rng = DetRng::seed_from_u64(7);
        let (h, perm) = random_permute_nodes(&g, &mut rng);
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        for u in g.nodes() {
            let hu = perm[u.index()];
            assert_eq!(h.label(hu), g.label(u), "labels ride with their role");
            let mut old_nbr_labels: Vec<Label> =
                g.neighbors(u).iter().map(|&v| g.label(v)).collect();
            let mut new_nbr_labels: Vec<Label> =
                h.neighbors(hu).iter().map(|&v| h.label(v)).collect();
            old_nbr_labels.sort_unstable();
            new_nbr_labels.sort_unstable();
            assert_eq!(old_nbr_labels, new_nbr_labels);
        }
    }

    #[test]
    #[should_panic(expected = "permutation of 0..n")]
    fn permute_nodes_rejects_non_permutations() {
        let g = generators::path(3);
        permute_nodes(&g, &[NodeId(0), NodeId(0), NodeId(2)]);
    }

    #[test]
    fn neighbor_order_follows_new_labels() {
        // After reversing labels, neighbour lists re-sort by new labels.
        let g = generators::star(4);
        let h = reverse_labels(&g);
        let nbr_labels: Vec<Label> = h.neighbors(NodeId(0)).iter().map(|&v| h.label(v)).collect();
        let mut sorted = nbr_labels.clone();
        sorted.sort_unstable();
        assert_eq!(nbr_labels, sorted);
    }
}
