//! Adversarial relabelling (§1.1).
//!
//! The paper assumes vertex labels are independent of the topology: a
//! routing algorithm must succeed under *any* permutation of the labels.
//! These helpers rewrite a graph's labels while preserving structure, so
//! test suites can check label-permutation robustness.

use crate::rng::DetRng;

use crate::graph::{Graph, GraphBuilder};
use crate::labels::{Label, NodeId};

/// Returns a structurally identical graph whose node `i` carries label
/// `perm[i]` instead of its original label.
///
/// # Panics
///
/// Panics if `perm` has the wrong length or contains duplicates.
pub fn relabel(g: &Graph, perm: &[Label]) -> Graph {
    assert_eq!(perm.len(), g.node_count(), "permutation length mismatch");
    let mut b = GraphBuilder::new();
    for &l in perm {
        b.add_node(l).expect("labels in a permutation are unique");
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v).expect("relabelling preserves simplicity");
    }
    b.build()
}

/// Applies a uniformly random permutation of the labels `0..n`.
pub fn random_relabel(g: &Graph, rng: &mut DetRng) -> Graph {
    let mut labels: Vec<Label> = (0..g.node_count() as u32).map(Label).collect();
    rng.shuffle(&mut labels);
    relabel(g, &labels)
}

/// Reverses the identity labelling (`i -> n-1-i`): a cheap deterministic
/// adversarial permutation that flips every rank comparison.
pub fn reverse_labels(g: &Graph) -> Graph {
    let n = g.node_count() as u32;
    let labels: Vec<Label> = (0..n).map(|i| Label(n - 1 - i)).collect();
    relabel(g, &labels)
}

/// The node of `g2` playing the role that `u` plays in `g1`, under the
/// convention that both graphs were produced by [`relabel`]-family calls
/// from the same base graph (node ids are preserved by relabelling).
pub fn same_node(_g1: &Graph, u: NodeId) -> NodeId {
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::DetRng;
    use crate::traversal;

    #[test]
    fn relabel_preserves_structure() {
        let g = generators::cycle(6);
        let h = reverse_labels(&g);
        assert_eq!(h.node_count(), 6);
        assert_eq!(h.edge_count(), 6);
        assert_eq!(h.label(NodeId(0)), Label(5));
        assert!(h.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(traversal::diameter(&h), traversal::diameter(&g));
    }

    #[test]
    fn random_relabel_is_permutation() {
        let g = generators::path(10);
        let mut rng = DetRng::seed_from_u64(1);
        let h = random_relabel(&g, &mut rng);
        let mut labels: Vec<u32> = h.nodes().map(|u| h.label(u).value()).collect();
        labels.sort_unstable();
        assert_eq!(labels, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn relabel_rejects_wrong_length() {
        let g = generators::path(3);
        relabel(&g, &[Label(0)]);
    }

    #[test]
    fn neighbor_order_follows_new_labels() {
        // After reversing labels, neighbour lists re-sort by new labels.
        let g = generators::star(4);
        let h = reverse_labels(&g);
        let nbr_labels: Vec<Label> = h.neighbors(NodeId(0)).iter().map(|&v| h.label(v)).collect();
        let mut sorted = nbr_labels.clone();
        sorted.sort_unstable();
        assert_eq!(nbr_labels, sorted);
    }
}
