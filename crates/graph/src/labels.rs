//! Node identifiers, labels, and the edge rank order.
//!
//! The paper distinguishes a node's *identity inside a data structure*
//! (here [`NodeId`], a dense index) from its *label* ([`Label`]), the
//! unique name that routing algorithms actually see. Labels induce a
//! strict total order on edges ([`EdgeRank`], §5.1: "label each edge by
//! concatenating the labels of its endpoints and order edge labels
//! lexicographically"), which the preprocessing step uses to break local
//! cycles deterministically and consistently across nodes.

use std::fmt;

/// Dense index of a node inside a [`Graph`](crate::Graph).
///
/// `NodeId` is a storage artefact: it says where a node lives in the
/// adjacency structure, nothing more. Routing decisions must be functions
/// of [`Label`]s, never of `NodeId`s, because the adversary may permute
/// labels freely (§1.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Unique vertex label.
///
/// Labels are the only names a local routing algorithm may rely on. The
/// rank of a node is the value of its label; the paper's rules "forward
/// to the active neighbour of lowest rank" compare these values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Label(pub u32);

impl Label {
    /// Returns the label's numeric value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// The rank of an edge: the lexicographically ordered pair of its
/// endpoint labels (smaller label first).
///
/// `EdgeRank` is a strict total order over the edges of a labelled simple
/// graph: no two distinct edges share a rank because labels are unique.
/// The preprocessing step of Algorithms 1, 1B and 2 classifies the edge
/// of *minimum* rank on every local cycle as dormant (§5.1).
///
/// ```
/// use locality_graph::{EdgeRank, Label};
///
/// let low = EdgeRank::new(Label(0), Label(7));
/// let high = EdgeRank::new(Label(7), Label(1)); // order of arguments is irrelevant
/// assert!(low < high);
/// assert_eq!(high, EdgeRank::new(Label(1), Label(7)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeRank(pub Label, pub Label);

impl EdgeRank {
    /// Builds the rank of the edge `{a, b}`; the pair is normalised so the
    /// smaller label comes first.
    pub fn new(a: Label, b: Label) -> Self {
        if a <= b {
            EdgeRank(a, b)
        } else {
            EdgeRank(b, a)
        }
    }
}

impl fmt::Display for EdgeRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.0, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_rank_is_normalised() {
        assert_eq!(
            EdgeRank::new(Label(9), Label(2)),
            EdgeRank::new(Label(2), Label(9))
        );
    }

    #[test]
    fn edge_rank_orders_lexicographically() {
        let e1 = EdgeRank::new(Label(0), Label(9));
        let e2 = EdgeRank::new(Label(1), Label(2));
        let e3 = EdgeRank::new(Label(1), Label(3));
        assert!(e1 < e2);
        assert!(e2 < e3);
    }

    #[test]
    fn node_id_round_trips_through_index() {
        assert_eq!(NodeId(17).index(), 17);
        assert_eq!(NodeId::from(4u32), NodeId(4));
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Label(3).to_string(), "v3");
        assert_eq!(EdgeRank::new(Label(1), Label(0)).to_string(), "(v0,v1)");
    }
}
