//! Error type for graph construction and parsing.

use std::error::Error;
use std::fmt;

use crate::labels::{Label, NodeId};

/// Errors produced while building, mutating, or parsing graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Two nodes were given the same label; labels must be unique.
    DuplicateLabel(Label),
    /// An edge was added twice; the graph is simple.
    DuplicateEdge(NodeId, NodeId),
    /// An edge removal named an edge that is not present.
    MissingEdge(NodeId, NodeId),
    /// A self-loop was requested; the graph is simple.
    SelfLoop(NodeId),
    /// An endpoint refers to a node that was never added.
    UnknownNode(NodeId),
    /// A label lookup failed.
    UnknownLabel(Label),
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An edgelist line declared a self-loop (`u u`).
    EdgelistSelfLoop {
        /// The node that was looped to itself.
        node: NodeId,
        /// 1-based line number of the offending input line.
        line: usize,
    },
    /// An edgelist line repeated an edge already declared earlier
    /// (in either direction). Only strict ingestion reports this;
    /// lenient ingestion dedups silently.
    EdgelistDuplicateEdge {
        /// Smaller endpoint of the repeated edge.
        u: NodeId,
        /// Larger endpoint of the repeated edge.
        v: NodeId,
        /// 1-based line number of the repeating input line.
        line: usize,
    },
    /// An edgelist endpoint is a valid integer but exceeds the
    /// supported node-id range (node count must fit in `u32`).
    EdgelistIdOutOfRange {
        /// The out-of-range id as written in the input.
        id: u64,
        /// 1-based line number of the offending input line.
        line: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateLabel(l) => write!(f, "duplicate node label {l}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "edge {{{a},{b}}} already present"),
            GraphError::MissingEdge(a, b) => write!(f, "edge {{{a},{b}}} is not present"),
            GraphError::SelfLoop(a) => write!(f, "self-loop at {a} not allowed in a simple graph"),
            GraphError::UnknownNode(a) => write!(f, "node {a} does not exist"),
            GraphError::UnknownLabel(l) => write!(f, "label {l} does not exist"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::EdgelistSelfLoop { node, line } => {
                write!(f, "self-loop at {node} on line {line}")
            }
            GraphError::EdgelistDuplicateEdge { u, v, line } => {
                write!(f, "duplicate edge {{{u},{v}}} on line {line}")
            }
            GraphError::EdgelistIdOutOfRange { id, line } => {
                write!(f, "node id {id} on line {line} exceeds the supported range")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::SelfLoop(NodeId(3));
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::Parse {
            line: 2,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 2"));
    }
}
