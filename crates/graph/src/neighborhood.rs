//! Extraction of the k-neighbourhood `G_k(u)` (§2.1).
//!
//! The paper defines `G_k(u)` as "the subgraph of `G` that contains all
//! paths rooted at `u` with length at most `k`". Concretely:
//!
//! * a **vertex** `x` belongs to `G_k(u)` iff `dist(u, x) <= k` (a
//!   shortest path is a simple path rooted at `u`);
//! * an **edge** `{x, y}` belongs to `G_k(u)` iff
//!   `min(dist(u, x), dist(u, y)) + 1 <= k` — a shortest path to the
//!   nearer endpoint extended across the edge is a simple path of that
//!   length rooted at `u` (and no shorter simple path can reach the edge).
//!
//! This matches the paper's examples: on a cycle of length `2k` the whole
//! cycle is visible from any node, while on a cycle of length `2k + 1`
//! the "far" edge joining the two antipodal vertices is *not* visible,
//! splitting the view into two independent path components.

use crate::dist::DistMap;
use crate::labels::NodeId;
use crate::subgraph::{Subgraph, SubgraphBuilder};
use crate::traversal::{self, Topology};

/// Extracts `G_k(u)` from `topo` as a [`Subgraph`].
///
/// Works on any [`Topology`], so it can also re-extract a neighbourhood
/// from an already-filtered routing view (used to build `G'_k(u)` after
/// dormant edges are removed).
///
/// # Example
///
/// ```
/// use locality_graph::{generators, neighborhood, NodeId};
///
/// let g = generators::cycle(8); // length 2k with k = 4: fully visible
/// let view = neighborhood::k_neighborhood(&g, NodeId(0), 4);
/// assert_eq!(view.node_count(), 8);
/// assert_eq!(view.edge_count(), 8);
///
/// let g = generators::cycle(9); // length 2k + 1: far edge hidden
/// let view = neighborhood::k_neighborhood(&g, NodeId(0), 4);
/// assert_eq!(view.node_count(), 9);
/// assert_eq!(view.edge_count(), 8);
/// ```
pub fn k_neighborhood<T: Topology + ?Sized>(topo: &T, u: NodeId, k: u32) -> Subgraph {
    k_neighborhood_with_distances(topo, u, k).0
}

/// `G_k(u)` together with the BFS distances from `u`, which every
/// consumer of a view wants anyway.
///
/// The distances are the ones computed by the extraction BFS itself:
/// distances within `G_k(u)` equal distances within `G` truncated at
/// depth `k`, because every prefix of a shortest path of length `<= k`
/// lies in the view by the edge-membership rule. (A debug assertion
/// re-checks this equivalence in debug builds.)
pub fn k_neighborhood_with_distances<T: Topology + ?Sized>(
    topo: &T,
    u: NodeId,
    k: u32,
) -> (Subgraph, DistMap) {
    let dist = traversal::bfs_distances(topo, u, Some(k));
    let mut b = SubgraphBuilder::with_capacity(dist.len(), dist.len());
    if dist.is_empty() {
        return (b.build(), dist);
    }
    b.insert_node(u);
    for (x, dx) in dist.iter() {
        b.insert_node(x);
        if dx < k {
            topo.for_each_neighbor(x, &mut |y| {
                // The nearer endpoint decides membership; iterate from the
                // nearer side only to avoid double work.
                if dist.get(y).is_some_and(|dy| dy >= dx) {
                    b.insert_edge(x, y);
                }
            });
        }
    }
    let sub = b.build();
    debug_assert_eq!(
        traversal::bfs_distances(&sub, u, Some(k))
            .iter()
            .collect::<Vec<_>>(),
        dist.iter().collect::<Vec<_>>(),
        "distances in G truncated at k must equal distances within G_k(u)"
    );
    (sub, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_neighborhood_is_truncated_path() {
        let g = generators::path(20);
        let view = k_neighborhood(&g, NodeId(10), 3);
        assert_eq!(view.node_count(), 7);
        assert_eq!(view.edge_count(), 6);
        assert!(view.contains_node(NodeId(7)));
        assert!(!view.contains_node(NodeId(6)));
    }

    #[test]
    fn odd_cycle_far_edge_hidden() {
        let g = generators::cycle(9);
        let view = k_neighborhood(&g, NodeId(0), 4);
        // vertices 4 and 5 are both at distance 4; the edge between them
        // is not on any simple path of length <= 4 rooted at 0.
        assert!(view.contains_node(NodeId(4)));
        assert!(view.contains_node(NodeId(5)));
        assert!(!view.has_edge(NodeId(4), NodeId(5)));
    }

    #[test]
    fn even_cycle_fully_visible() {
        let g = generators::cycle(8);
        let view = k_neighborhood(&g, NodeId(2), 4);
        assert_eq!(view.edge_count(), 8);
        assert!(view.has_edge(NodeId(6), NodeId(5)));
    }

    #[test]
    fn whole_graph_visible_when_k_at_least_eccentricity() {
        let g = generators::spider(3, 4); // 3 legs of length 4
        let view = k_neighborhood(&g, NodeId(0), 4);
        assert_eq!(view.node_count(), g.node_count());
        assert_eq!(view.edge_count(), g.edge_count());
    }

    #[test]
    fn k_zero_is_single_node() {
        let g = generators::path(5);
        let view = k_neighborhood(&g, NodeId(2), 0);
        assert_eq!(view.node_count(), 1);
        assert_eq!(view.edge_count(), 0);
    }

    #[test]
    fn distances_accompany_view() {
        let g = generators::cycle(12);
        let (view, dist) = k_neighborhood_with_distances(&g, NodeId(0), 5);
        assert_eq!(dist[NodeId(0)], 0);
        assert_eq!(dist[NodeId(5)], 5);
        assert_eq!(dist[NodeId(7)], 5);
        assert_eq!(dist.len(), view.node_count());
    }

    #[test]
    fn distances_match_in_view_bfs() {
        // The returned distances are taken from the extraction BFS; they
        // must equal a from-scratch BFS inside the extracted subgraph.
        for (g, k) in [
            (generators::cycle(11), 4u32),
            (generators::lollipop(6, 4), 3),
            (generators::grid(4, 5), 3),
            (generators::complete(6), 2),
        ] {
            for u in g.nodes() {
                let (sub, dist) = k_neighborhood_with_distances(&g, u, k);
                let inside = traversal::bfs_distances(&sub, u, Some(k));
                assert_eq!(
                    dist.iter().collect::<Vec<_>>(),
                    inside.iter().collect::<Vec<_>>(),
                    "node {u} k={k}"
                );
            }
        }
    }

    #[test]
    fn edge_between_two_distance_k_branches_hidden() {
        // Two branches of length k from u, joined at the far end: the
        // joining edge must be invisible (it needs k + 1 hops).
        // u=0; branch A: 0-1-2-3; branch B: 0-4-5-6; edge {3,6}.
        let g =
            crate::Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6), (3, 6)])
                .unwrap();
        let view = k_neighborhood(&g, NodeId(0), 3);
        assert!(view.contains_node(NodeId(3)));
        assert!(view.contains_node(NodeId(6)));
        assert!(!view.has_edge(NodeId(3), NodeId(6)));
        // With k = 4 the joining edge becomes visible.
        let view = k_neighborhood(&g, NodeId(0), 4);
        assert!(view.has_edge(NodeId(3), NodeId(6)));
    }
}
