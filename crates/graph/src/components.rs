//! Local components of a k-neighbourhood and their taxonomy (§2.1, Fig. 1).
//!
//! Let `C` be a connected component of `G_k(u) \ {u}` (a *local
//! component* of `u`). The paper classifies `C` as:
//!
//! * **rooted at `v`** for each neighbour `v` of `u` inside `C` (a
//!   component can have several roots);
//! * **active** if `C` contains a vertex `z` with `dist(u, z) = k` — the
//!   component extends to the limit of `u`'s knowledge, so the network
//!   may continue beyond it; **passive** otherwise (a passive component
//!   is fully known);
//! * **constrained active** if every *active path* (shortest path from
//!   `u` to a depth-`k` vertex of `C`) passes through some single vertex
//!   `w != u`, the *constraint vertex*;
//! * **independent** if `C` has a unique root.
//!
//! Every independent active component is constrained (its root is a
//! constraint vertex). These notions drive all four routing algorithms.

use crate::dist::DistMap;
use crate::labels::NodeId;
use crate::subgraph::Subgraph;
use crate::traversal::{self, FilteredTopology};

/// One local component of a node's k-neighbourhood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalComponent {
    /// Nodes of the component, sorted by id (never includes the centre).
    pub nodes: Vec<NodeId>,
    /// Neighbours of the centre that lie in this component, sorted by id.
    pub roots: Vec<NodeId>,
    /// Vertices of the component at distance exactly `k` from the centre
    /// (within the view). Non-empty iff the component is active.
    pub depth_k_nodes: Vec<NodeId>,
    /// Constraint vertices: vertices `w` such that every shortest path
    /// from the centre to a depth-`k` vertex passes through `w`.
    /// Computed only for active components; empty for passive ones.
    pub constraint_vertices: Vec<NodeId>,
}

impl LocalComponent {
    /// Whether the component reaches the knowledge horizon (distance `k`).
    #[inline]
    pub fn is_active(&self) -> bool {
        !self.depth_k_nodes.is_empty()
    }

    /// Whether the component hangs off the centre by a single edge.
    #[inline]
    pub fn is_independent(&self) -> bool {
        self.roots.len() == 1
    }

    /// Whether the component is a *constrained* active component.
    #[inline]
    pub fn is_constrained(&self) -> bool {
        self.is_active() && !self.constraint_vertices.is_empty()
    }

    /// Whether `x` belongs to the component.
    pub fn contains(&self, x: NodeId) -> bool {
        self.nodes.binary_search(&x).is_ok()
    }
}

/// The full local-component decomposition of a view around its centre.
#[derive(Clone, Debug)]
pub struct ComponentAnalysis {
    /// The centre node `u`.
    pub center: NodeId,
    /// The locality parameter the view was built with.
    pub k: u32,
    /// All local components, sorted by their smallest node id.
    pub components: Vec<LocalComponent>,
    /// Distances from the centre within the view.
    pub dist: DistMap,
}

impl ComponentAnalysis {
    /// Decomposes `view` (assumed to be a k-neighbourhood of `center`,
    /// raw `G_k(u)` or preprocessed `G'_k(u)`) into local components.
    ///
    /// # Panics
    ///
    /// Panics if `center` is not a node of `view`.
    pub fn analyze(view: &Subgraph, center: NodeId, k: u32) -> ComponentAnalysis {
        assert!(
            view.contains_node(center),
            "centre {center} missing from view"
        );
        let dist = traversal::bfs_distances(view, center, None);
        let punctured = view.without_node(center);
        let mut comps = Vec::new();
        for nodes in traversal::connected_components(&punctured) {
            // Skip stray nodes disconnected from the centre (cannot occur
            // in a genuine k-neighbourhood, but be defensive).
            if !dist.contains(nodes[0]) {
                continue;
            }
            let mut nodes = nodes;
            nodes.sort_unstable();
            let roots: Vec<NodeId> = view
                .neighbors(center)
                .iter()
                .copied()
                .filter(|v| nodes.binary_search(v).is_ok())
                .collect();
            let depth_k_nodes: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|&x| dist.get(x) == Some(k))
                .collect();
            let constraint_vertices = if depth_k_nodes.is_empty() {
                Vec::new()
            } else {
                constraint_vertices(view, center, k, &nodes, &depth_k_nodes)
            };
            comps.push(LocalComponent {
                nodes,
                roots,
                depth_k_nodes,
                constraint_vertices,
            });
        }
        comps.sort_by_key(|c| c.nodes[0]);
        ComponentAnalysis {
            center,
            k,
            components: comps,
            dist,
        }
    }

    /// The active components, in storage order.
    pub fn active_components(&self) -> impl Iterator<Item = &LocalComponent> {
        self.components.iter().filter(|c| c.is_active())
    }

    /// The *active degree* of the centre: its number of active
    /// neighbours, i.e. roots of active components (Propositions 1–3
    /// bound this by 3, 2, 1 for k ≥ n/4, n/3, n/2 respectively).
    pub fn active_degree(&self) -> usize {
        self.active_components().map(|c| c.roots.len()).sum()
    }

    /// All active neighbours of the centre, sorted by id.
    pub fn active_neighbors(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .active_components()
            .flat_map(|c| c.roots.iter().copied())
            .collect();
        v.sort_unstable();
        v
    }

    /// Index of the component containing `x`, if any.
    pub fn component_of(&self, x: NodeId) -> Option<usize> {
        self.components.iter().position(|c| c.contains(x))
    }

    /// The component rooted at the centre's neighbour `v`, if any.
    pub fn component_rooted_at(&self, v: NodeId) -> Option<&LocalComponent> {
        self.components
            .iter()
            .find(|c| c.roots.binary_search(&v).is_ok())
    }
}

/// Vertices `w` in `comp` such that *every* shortest path from `center`
/// to *every* depth-`k` vertex of `comp` passes through `w`.
///
/// `w` lies on every shortest `center → z` path (all of length `k`) iff
/// deleting `w` pushes `dist(center, z)` above `k` (or disconnects `z`).
fn constraint_vertices(
    view: &Subgraph,
    center: NodeId,
    k: u32,
    comp: &[NodeId],
    depth_k: &[NodeId],
) -> Vec<NodeId> {
    let mut out = Vec::new();
    for &w in comp {
        if depth_k == [w] && comp.len() == 1 {
            // A single depth-k vertex that is the entire component: the
            // root itself is the constraint vertex (k = 1 corner case).
            out.push(w);
            continue;
        }
        if depth_k.contains(&w) && depth_k.len() == 1 {
            // The unique deep vertex trivially lies on all its own paths.
            out.push(w);
            continue;
        }
        let masked = FilteredTopology::new(view, |a: NodeId, b: NodeId| a != w && b != w);
        let dist = traversal::bfs_distances(&masked, center, Some(k));
        if depth_k
            .iter()
            .all(|&z| z == w || dist.get(z).is_none_or(|d| d > k))
        {
            out.push(w);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::k_neighborhood;
    use crate::{generators, Graph, GraphBuilder, Label};

    fn analyze(g: &Graph, u: NodeId, k: u32) -> ComponentAnalysis {
        let view = k_neighborhood(g, u, k);
        ComponentAnalysis::analyze(&view, u, k)
    }

    #[test]
    fn path_interior_node_has_two_active_components() {
        let g = generators::path(21);
        let a = analyze(&g, NodeId(10), 4);
        assert_eq!(a.components.len(), 2);
        for c in &a.components {
            assert!(c.is_active());
            assert!(c.is_independent());
            assert!(c.is_constrained(), "independent active => constrained");
        }
        assert_eq!(a.active_degree(), 2);
    }

    #[test]
    fn path_near_end_has_one_passive_side() {
        let g = generators::path(21);
        let a = analyze(&g, NodeId(2), 4);
        assert_eq!(a.components.len(), 2);
        let passive: Vec<_> = a.components.iter().filter(|c| !c.is_active()).collect();
        assert_eq!(passive.len(), 1);
        assert_eq!(passive[0].nodes, vec![NodeId(0), NodeId(1)]);
        assert_eq!(a.active_degree(), 1);
    }

    #[test]
    fn independent_active_constraint_chain() {
        // On a path, every vertex strictly between u and the deep vertex
        // is a constraint vertex, as is the deep vertex itself.
        let g = generators::path(10);
        let a = analyze(&g, NodeId(0), 4);
        let c = &a.components[0];
        assert_eq!(c.depth_k_nodes, vec![NodeId(4)]);
        assert_eq!(
            c.constraint_vertices,
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn even_cycle_single_unconstrained_component() {
        // Cycle of length 2k: one component, two roots, active via the
        // antipode, but reachable both ways only through the antipode
        // itself — the antipode is the unique constraint vertex.
        let g = generators::cycle(8);
        let a = analyze(&g, NodeId(0), 4);
        assert_eq!(a.components.len(), 1);
        let c = &a.components[0];
        assert!(c.is_active());
        assert!(!c.is_independent());
        assert_eq!(c.depth_k_nodes, vec![NodeId(4)]);
        assert_eq!(c.constraint_vertices, vec![NodeId(4)]);
    }

    #[test]
    fn odd_cycle_two_independent_components() {
        let g = generators::cycle(9);
        let a = analyze(&g, NodeId(0), 4);
        assert_eq!(a.components.len(), 2);
        assert!(a.components.iter().all(|c| c.is_independent()));
        assert!(a.components.iter().all(|c| c.is_active()));
        assert_eq!(a.active_degree(), 2);
    }

    /// Reconstruction of Fig. 1: four components with the classifications
    /// the caption lists.
    #[test]
    fn figure_one_taxonomy() {
        let k = 8;
        let mut b = GraphBuilder::new();
        let mut next = 0u32;
        let mut node = |b: &mut GraphBuilder| {
            let id = b.add_node(Label(next)).unwrap();
            next += 1;
            id
        };
        let u = node(&mut b);
        // B1: independent active (path of length 8).
        let mut prev = u;
        let mut b1_nodes = Vec::new();
        for _ in 0..k {
            let x = node(&mut b);
            b.add_edge(prev, x).unwrap();
            b1_nodes.push(x);
            prev = x;
        }
        // B2: independent passive (path of length 3).
        let mut prev = u;
        let mut b2_first = None;
        for i in 0..3 {
            let x = node(&mut b);
            b.add_edge(prev, x).unwrap();
            if i == 0 {
                b2_first = Some(x);
            }
            prev = x;
        }
        // B3: constrained active, not independent: two roots meeting at w,
        // then a path to depth 8.
        let x1 = node(&mut b);
        let x2 = node(&mut b);
        let w = node(&mut b);
        b.add_edge(u, x1).unwrap();
        b.add_edge(u, x2).unwrap();
        b.add_edge(x1, w).unwrap();
        b.add_edge(x2, w).unwrap();
        let mut prev = w;
        for _ in 0..(k - 2) {
            let x = node(&mut b);
            b.add_edge(prev, x).unwrap();
            prev = x;
        }
        // B4: active, not independent, not constrained: two depth-8
        // branches sharing only an edge near u.
        let a1 = node(&mut b);
        let c1 = node(&mut b);
        b.add_edge(u, a1).unwrap();
        b.add_edge(u, c1).unwrap();
        b.add_edge(a1, c1).unwrap();
        let mut prev = a1;
        for _ in 0..(k - 1) {
            let x = node(&mut b);
            b.add_edge(prev, x).unwrap();
            prev = x;
        }
        let mut prev = c1;
        for _ in 0..(k - 1) {
            let x = node(&mut b);
            b.add_edge(prev, x).unwrap();
            prev = x;
        }
        let g = b.build();
        let a = analyze(&g, u, k);
        assert_eq!(a.components.len(), 4);

        let b1 = a.components[a.component_of(b1_nodes[0]).unwrap()].clone();
        assert!(b1.is_active() && b1.is_independent() && b1.is_constrained());

        let b2 = a.components[a.component_of(b2_first.unwrap()).unwrap()].clone();
        assert!(!b2.is_active() && b2.is_independent());

        let b3 = a.components[a.component_of(w).unwrap()].clone();
        assert!(b3.is_active() && !b3.is_independent() && b3.is_constrained());
        assert!(b3.constraint_vertices.contains(&w));

        let b4 = a.components[a.component_of(a1).unwrap()].clone();
        assert!(b4.is_active() && !b4.is_independent() && !b4.is_constrained());

        // Active degree counts roots of active components: 1 + 2 + 2.
        assert_eq!(a.active_degree(), 5);
    }

    #[test]
    fn component_rooted_at_finds_multi_root_components() {
        let g = generators::cycle(8);
        let a = analyze(&g, NodeId(0), 4);
        let c1 = a.component_rooted_at(NodeId(1)).unwrap();
        let c7 = a.component_rooted_at(NodeId(7)).unwrap();
        assert_eq!(c1, c7);
        assert!(a.component_rooted_at(NodeId(4)).is_none());
    }

    #[test]
    #[should_panic(expected = "centre")]
    fn analyze_requires_center_in_view() {
        let g = generators::path(4);
        let view = k_neighborhood(&g, NodeId(0), 2);
        ComponentAnalysis::analyze(&view, NodeId(3), 2);
    }

    #[test]
    fn star_center_all_passive_when_k_large() {
        let g = generators::spider(4, 2);
        let a = analyze(&g, NodeId(0), 3);
        assert_eq!(a.components.len(), 4);
        assert!(a.components.iter().all(|c| !c.is_active()));
        assert_eq!(a.active_degree(), 0);
    }

    /// Independent oracle: enumerate *every* shortest path from the
    /// centre to every depth-k vertex of a component by walking the BFS
    /// DAG, and declare `w` a constraint vertex iff it lies on all of
    /// them — the literal §2.1 definition, computed without the
    /// masked-BFS shortcut the production code uses.
    fn constraint_vertices_oracle(
        view: &crate::Subgraph,
        center: NodeId,
        comp: &LocalComponent,
    ) -> Vec<NodeId> {
        use crate::traversal::bfs_distances;
        let dist = bfs_distances(view, center, None);
        // Collect all shortest paths center -> z for deep z.
        fn all_paths(
            view: &crate::Subgraph,
            dist: &DistMap,
            from: NodeId,
            to: NodeId,
            acc: &mut Vec<NodeId>,
            out: &mut Vec<Vec<NodeId>>,
        ) {
            acc.push(from);
            if from == to {
                out.push(acc.clone());
            } else {
                for &x in view.neighbors(from) {
                    if dist.get(x) == Some(dist[from] + 1)
                        && dist.get(to).is_some_and(|dt| dist[x] <= dt)
                    {
                        all_paths(view, dist, x, to, acc, out);
                    }
                }
            }
            acc.pop();
        }
        let mut paths = Vec::new();
        for &z in &comp.depth_k_nodes {
            all_paths(view, &dist, center, z, &mut Vec::new(), &mut paths);
        }
        comp.nodes
            .iter()
            .copied()
            .filter(|w| paths.iter().all(|p| p.contains(w)))
            .collect()
    }

    #[test]
    fn constraint_vertices_match_exhaustive_oracle() {
        use crate::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(2023);
        for _ in 0..15 {
            let n = rng.gen_range(4..12);
            let g = crate::generators::random_mixed(n, &mut rng);
            for k in 1..=(n as u32 / 2) {
                for u in g.nodes() {
                    let view = k_neighborhood(&g, u, k);
                    let a = ComponentAnalysis::analyze(&view, u, k);
                    for c in a.active_components() {
                        let oracle = constraint_vertices_oracle(&view, u, c);
                        assert_eq!(
                            c.constraint_vertices, oracle,
                            "constraint vertices diverge at {u} (k={k}) on {g:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k_equals_one_neighbors_are_depth_k() {
        let g = generators::path(5);
        let a = analyze(&g, NodeId(2), 1);
        assert_eq!(a.components.len(), 2);
        for c in &a.components {
            assert!(c.is_active());
            assert_eq!(c.nodes.len(), 1);
            assert_eq!(c.constraint_vertices, c.nodes);
        }
    }
}
