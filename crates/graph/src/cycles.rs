//! Cycle structure: girth, acyclicity, and local-cycle queries (§2.1).
//!
//! A *local cycle* at node `u` is a cycle through `u` of length at most
//! `2k`; such a cycle is always entirely visible in `G_k(u)`. The
//! preprocessing step of Algorithms 1, 1B and 2 breaks every local cycle,
//! which is why Lemma 5 can conclude that the surviving ("consistent")
//! edges form a graph of girth at least `2k + 1`.

use crate::dist::DistMap;
use crate::labels::NodeId;
use crate::traversal::Topology;

const NO_PARENT: u32 = u32::MAX;

/// Length of the shortest cycle, or `None` for an acyclic topology.
///
/// Runs a BFS from every vertex; when a non-tree edge closes a cycle the
/// candidate length is `dist(x) + dist(y) + 1`. This is the textbook
/// exact girth algorithm for unweighted graphs.
pub fn girth<T: Topology + ?Sized>(topo: &T) -> Option<u32> {
    let bound = topo.id_bound();
    let mut nodes = Vec::new();
    topo.for_each_node(&mut |u| nodes.push(u));
    let mut best: Option<u32> = None;
    for &s in &nodes {
        // BFS with parents; detect cross/back edges.
        let mut dist = DistMap::new(bound);
        let mut parent = vec![NO_PARENT; bound];
        dist.insert(s, 0);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(x) = queue.pop_front() {
            let dx = dist[x];
            if let Some(b) = best {
                // No shorter cycle through s can be found deeper than b/2.
                if dx * 2 >= b {
                    continue;
                }
            }
            let mut nbrs = Vec::new();
            topo.for_each_neighbor(x, &mut |y| nbrs.push(y));
            for y in nbrs {
                if parent[x.index()] == y.0 {
                    continue;
                }
                match dist.get(y) {
                    None => {
                        dist.insert(y, dx + 1);
                        parent[y.index()] = x.0;
                        queue.push_back(y);
                    }
                    Some(dy) => {
                        let len = dx + dy + 1;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    }
                }
            }
        }
    }
    best
}

/// Whether the topology contains no cycle.
pub fn is_acyclic<T: Topology + ?Sized>(topo: &T) -> bool {
    girth(topo).is_none()
}

/// Whether the topology is a tree (connected and acyclic).
pub fn is_tree<T: Topology + ?Sized>(topo: &T) -> bool {
    crate::traversal::is_connected(topo) && is_acyclic(topo)
}

/// The cycle rank (circuit rank) `m - n + c`: the number of independent
/// cycles. Zero iff the topology is a forest.
pub fn cycle_rank<T: Topology + ?Sized>(topo: &T) -> usize {
    let mut n = 0usize;
    let mut deg_sum = 0usize;
    let mut nodes = Vec::new();
    topo.for_each_node(&mut |u| {
        n += 1;
        nodes.push(u);
    });
    for &u in &nodes {
        topo.for_each_neighbor(u, &mut |_| deg_sum += 1);
    }
    let m = deg_sum / 2;
    let c = crate::traversal::connected_components(topo).len();
    m + c - n
}

/// Length of the shortest cycle passing through node `u`, or `None`.
///
/// BFS from `u` tracking which root branch discovered each vertex: a
/// non-tree edge joining two *different* branches (or an edge straight
/// back to another neighbour of `u`) closes a cycle through `u`.
pub fn shortest_cycle_through<T: Topology + ?Sized>(topo: &T, u: NodeId) -> Option<u32> {
    if !topo.contains_node(u) {
        return None;
    }
    let bound = topo.id_bound();
    let mut dist = DistMap::new(bound);
    let mut branch = vec![NO_PARENT; bound];
    let mut parent = vec![NO_PARENT; bound];
    dist.insert(u, 0);
    let mut queue = std::collections::VecDeque::new();
    let mut roots = Vec::new();
    topo.for_each_neighbor(u, &mut |v| roots.push(v));
    let mut best: Option<u32> = None;
    for v in roots {
        if dist.contains(v) {
            // Parallel edges cannot occur in a simple graph; `v` seen
            // twice would mean a multi-edge. Ignore defensively.
            continue;
        }
        dist.insert(v, 1);
        branch[v.index()] = v.0;
        parent[v.index()] = u.0;
        queue.push_back(v);
    }
    while let Some(x) = queue.pop_front() {
        let dx = dist[x];
        if let Some(b) = best {
            if dx * 2 >= b {
                continue;
            }
        }
        let bx = branch[x.index()];
        let mut nbrs = Vec::new();
        topo.for_each_neighbor(x, &mut |y| nbrs.push(y));
        for y in nbrs {
            if y == u || parent[x.index()] == y.0 {
                continue;
            }
            match dist.get(y) {
                None => {
                    dist.insert(y, dx + 1);
                    branch[y.index()] = bx;
                    parent[y.index()] = x.0;
                    queue.push_back(y);
                }
                Some(dy) => {
                    if branch[y.index()] != bx {
                        let len = dx + dy + 1;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Graph};

    #[test]
    fn girth_of_cycles_and_trees() {
        assert_eq!(girth(&generators::cycle(3)), Some(3));
        assert_eq!(girth(&generators::cycle(17)), Some(17));
        assert_eq!(girth(&generators::path(10)), None);
        assert!(is_tree(&generators::spider(3, 5)));
    }

    #[test]
    fn girth_of_theta_graph() {
        // Two vertices joined by paths of lengths 2, 3, 4: girth 5.
        let g = generators::theta(&[2, 3, 4]);
        assert_eq!(girth(&g), Some(5));
        assert_eq!(cycle_rank(&g), 2);
    }

    #[test]
    fn girth_of_complete_graph_is_three() {
        let g = generators::complete(5);
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn cycle_rank_counts_independent_cycles() {
        assert_eq!(cycle_rank(&generators::path(6)), 0);
        assert_eq!(cycle_rank(&generators::cycle(6)), 1);
        assert_eq!(cycle_rank(&generators::complete(4)), 3);
    }

    #[test]
    fn shortest_cycle_through_node() {
        // Lollipop: triangle {0,1,2} with a tail 2-3-4-5.
        let g = generators::lollipop(3, 3);
        assert_eq!(shortest_cycle_through(&g, NodeId(0)), Some(3));
        assert_eq!(shortest_cycle_through(&g, NodeId(5)), None);
    }

    #[test]
    fn shortest_cycle_through_picks_smallest() {
        // Theta graph: cycles 2+3=5, 2+4=6, 3+4=7 all pass through the
        // two hubs (nodes 0 and 1 in the generator's layout).
        let g = generators::theta(&[2, 3, 4]);
        assert_eq!(shortest_cycle_through(&g, NodeId(0)), Some(5));
    }

    #[test]
    fn shortest_cycle_through_interior_of_long_arm() {
        let g = generators::theta(&[2, 3, 4]);
        // A vertex in the middle of the length-4 arm lies only on cycles
        // 2+4 = 6 and 3+4 = 7.
        let arm4_mid = NodeId((g.node_count() - 2) as u32); // last interior node
        let len = shortest_cycle_through(&g, arm4_mid).unwrap();
        assert_eq!(len, 6);
    }

    #[test]
    fn girth_empty_and_single() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(girth(&g), None);
        assert!(is_acyclic(&g));
    }
}
