//! Property-based tests for the graph substrate, driven by the in-repo
//! deterministic PRNG: each test replays the same randomized case list
//! on every run.

use locality_graph::rng::DetRng;
use locality_graph::{cycles, generators, neighborhood, permute, traversal, NodeId};

const CASES: usize = 64;

/// Prüfer decoding always yields a tree.
#[test]
fn random_tree_is_tree() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0001);
    for _ in 0..CASES {
        let n = rng.gen_range(1..40usize);
        let g = generators::random_tree(n, &mut rng);
        assert_eq!(g.node_count(), n);
        assert_eq!(g.edge_count(), n.saturating_sub(1));
        assert!(traversal::is_connected(&g));
        assert!(cycles::is_acyclic(&g));
    }
}

/// `shortest_path` returns a genuine path of length `distance`.
#[test]
fn shortest_path_is_valid() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0002);
    for _ in 0..CASES {
        let n = rng.gen_range(2..25usize);
        let g = generators::random_mixed(n, &mut rng);
        let s = NodeId(rng.gen_range(0..n as u32));
        let t = NodeId(rng.gen_range(0..n as u32));
        let d = traversal::distance(&g, s, t).expect("connected");
        let p = traversal::shortest_path(&g, s, t).expect("connected");
        assert_eq!(p.len() as u32, d + 1);
        assert_eq!(*p.first().unwrap(), s);
        assert_eq!(*p.last().unwrap(), t);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        // No repeated vertices: it is a simple path.
        let mut q = p.clone();
        q.sort_unstable();
        q.dedup();
        assert_eq!(q.len(), p.len());
    }
}

/// Views are monotone in k: `G_k(u)` is a subgraph of `G_{k+1}(u)`.
#[test]
fn neighborhood_monotone_in_k() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0003);
    for _ in 0..CASES {
        let n = rng.gen_range(2..20usize);
        let g = generators::random_mixed(n, &mut rng);
        let u = NodeId(rng.gen_range(0..n as u32));
        let k = rng.gen_range(0..6u32);
        let small = neighborhood::k_neighborhood(&g, u, k);
        let big = neighborhood::k_neighborhood(&g, u, k + 1);
        for x in small.nodes() {
            assert!(big.contains_node(x));
        }
        for (x, y) in small.edges() {
            assert!(big.has_edge(x, y));
        }
    }
}

/// Relabelling is an isomorphism: distances are preserved.
#[test]
fn relabel_preserves_distances() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0004);
    for _ in 0..CASES {
        let n = rng.gen_range(2..18usize);
        let g = generators::random_mixed(n, &mut rng);
        let h = permute::random_relabel(&g, &mut rng);
        for u in g.nodes() {
            let dg = traversal::bfs_distances(&g, u, None);
            let dh = traversal::bfs_distances(&h, u, None);
            assert_eq!(dg, dh);
        }
    }
}

/// Girth and cycle rank agree about acyclicity, and the girth never
/// exceeds the number of nodes.
#[test]
fn girth_consistent_with_cycle_rank() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0005);
    for _ in 0..CASES {
        let n = rng.gen_range(3..16usize);
        let g = generators::random_mixed(n, &mut rng);
        let girth = cycles::girth(&g);
        assert_eq!(girth.is_none(), cycles::cycle_rank(&g) == 0);
        if let Some(girth) = girth {
            assert!(girth >= 3);
            assert!(girth as usize <= n);
        }
    }
}

/// A cycle through `u` exists iff `u` lies on some cycle, and its
/// length is at least the global girth.
#[test]
fn cycle_through_bounds() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0006);
    for _ in 0..CASES {
        let n = rng.gen_range(3..14usize);
        let g = generators::random_mixed(n, &mut rng);
        let girth = cycles::girth(&g);
        for u in g.nodes() {
            if let Some(len) = cycles::shortest_cycle_through(&g, u) {
                assert!(len >= girth.unwrap());
            }
        }
        // Some node lies on a shortest cycle.
        if let Some(girth) = girth {
            let hit = g
                .nodes()
                .any(|u| cycles::shortest_cycle_through(&g, u) == Some(girth));
            assert!(hit);
        }
    }
}

/// Serialisation round-trips.
#[test]
fn io_round_trip() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0007);
    for _ in 0..CASES {
        let n = rng.gen_range(1..18usize);
        let g = permute::random_relabel(&generators::random_mixed(n, &mut rng), &mut rng);
        let text = locality_graph::io::to_string(&g);
        let h = locality_graph::io::from_str(&text).expect("round trip");
        assert_eq!(g, h);
    }
}

/// Sum of degrees is twice the edge count (handshake lemma).
#[test]
fn handshake() {
    let mut rng = DetRng::seed_from_u64(0x7e57_0008);
    for _ in 0..CASES {
        let n = rng.gen_range(1..20usize);
        let g = generators::random_mixed(n, &mut rng);
        let sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        assert_eq!(sum, 2 * g.edge_count());
        assert_eq!(sum, g.degree_sum());
    }
}
