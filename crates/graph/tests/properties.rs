//! Property-based tests for the graph substrate.

use locality_graph::{cycles, generators, neighborhood, permute, traversal, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prüfer decoding always yields a tree.
    #[test]
    fn random_tree_is_tree(seed in 0u64..10_000, n in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n.saturating_sub(1));
        prop_assert!(traversal::is_connected(&g));
        prop_assert!(cycles::is_acyclic(&g));
    }

    /// `shortest_path` returns a genuine path of length `distance`.
    #[test]
    fn shortest_path_is_valid(seed in 0u64..10_000, n in 2usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_mixed(n, &mut rng);
        let s = NodeId((seed % n as u64) as u32);
        let t = NodeId(((seed / 7) % n as u64) as u32);
        let d = traversal::distance(&g, s, t).expect("connected");
        let p = traversal::shortest_path(&g, s, t).expect("connected");
        prop_assert_eq!(p.len() as u32, d + 1);
        prop_assert_eq!(*p.first().unwrap(), s);
        prop_assert_eq!(*p.last().unwrap(), t);
        for w in p.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
        // No repeated vertices: it is a simple path.
        let mut q = p.clone();
        q.sort_unstable();
        q.dedup();
        prop_assert_eq!(q.len(), p.len());
    }

    /// Views are monotone in k: `G_k(u)` is a subgraph of `G_{k+1}(u)`.
    #[test]
    fn neighborhood_monotone_in_k(seed in 0u64..10_000, n in 2usize..20, k in 0u32..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_mixed(n, &mut rng);
        let u = NodeId((seed % n as u64) as u32);
        let small = neighborhood::k_neighborhood(&g, u, k);
        let big = neighborhood::k_neighborhood(&g, u, k + 1);
        for x in small.nodes() {
            prop_assert!(big.contains_node(x));
        }
        for (x, y) in small.edges() {
            prop_assert!(big.has_edge(x, y));
        }
    }

    /// Relabelling is an isomorphism: distances are preserved.
    #[test]
    fn relabel_preserves_distances(seed in 0u64..10_000, n in 2usize..18) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_mixed(n, &mut rng);
        let h = permute::random_relabel(&g, &mut rng);
        for u in g.nodes() {
            let dg = traversal::bfs_distances(&g, u, None);
            let dh = traversal::bfs_distances(&h, u, None);
            prop_assert_eq!(dg, dh);
        }
    }

    /// Girth and cycle rank agree about acyclicity, and the girth never
    /// exceeds the number of nodes.
    #[test]
    fn girth_consistent_with_cycle_rank(seed in 0u64..10_000, n in 3usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_mixed(n, &mut rng);
        let girth = cycles::girth(&g);
        prop_assert_eq!(girth.is_none(), cycles::cycle_rank(&g) == 0);
        if let Some(girth) = girth {
            prop_assert!(girth >= 3);
            prop_assert!(girth as usize <= n);
        }
    }

    /// A cycle through `u` exists iff `u` lies on some cycle, and its
    /// length is at least the global girth.
    #[test]
    fn cycle_through_bounds(seed in 0u64..10_000, n in 3usize..14) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_mixed(n, &mut rng);
        let girth = cycles::girth(&g);
        for u in g.nodes() {
            if let Some(len) = cycles::shortest_cycle_through(&g, u) {
                prop_assert!(Some(len) >= girth.map(|x| x.min(len)));
                prop_assert!(len >= girth.unwrap());
            }
        }
        // Some node lies on a shortest cycle.
        if let Some(girth) = girth {
            let hit = g.nodes().any(|u| cycles::shortest_cycle_through(&g, u) == Some(girth));
            prop_assert!(hit);
        }
    }

    /// Serialisation round-trips.
    #[test]
    fn io_round_trip(seed in 0u64..10_000, n in 1usize..18) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = permute::random_relabel(&generators::random_mixed(n, &mut rng), &mut rng);
        let text = locality_graph::io::to_string(&g);
        let h = locality_graph::io::from_str(&text).expect("round trip");
        prop_assert_eq!(g, h);
    }

    /// Sum of degrees is twice the edge count (handshake lemma).
    #[test]
    fn handshake(seed in 0u64..10_000, n in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_mixed(n, &mut rng);
        let sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(sum, 2 * g.edge_count());
        prop_assert_eq!(sum, g.degree_sum());
    }
}
