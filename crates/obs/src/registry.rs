//! A deterministic registry of named counters, gauges, and histograms.
//!
//! Instrumented code updates metrics by `&'static str` name (every
//! instrumentation point in the workspace uses a literal); the
//! registry stores them in `BTreeMap`s so a dump walks names in sorted
//! order — the iteration-order guarantee that makes a metrics flush
//! byte-identical run to run. This is the "registry" half of the
//! recorder: high-frequency facts (cache hits, wheel occupancy, queue
//! depths) are aggregated here in O(log n) per update and emitted once
//! per flush, while discrete facts (hops, faults, fates) go straight to
//! the event stream.

use std::collections::BTreeMap;

use crate::hist::PowHistogram;
use crate::json;

/// Named counters, gauges, and [`PowHistogram`]s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, PowHistogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Adds `by` to the counter `name`.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Raises the gauge `name` to `v` if `v` is larger (high-water
    /// marks).
    pub fn gauge_max(&mut self, name: &'static str, v: i64) {
        let slot = self.gauges.entry(name).or_insert(v);
        *slot = (*slot).max(v);
    }

    /// Records `v` into the histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().observe(v);
    }

    /// The current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if observed.
    pub fn hist(&self, name: &str) -> Option<&PowHistogram> {
        self.hists.get(name)
    }

    /// Folds another registry into this one (counters add, gauges take
    /// the max — registries are merged across trials, where high-water
    /// semantics are the useful ones — histograms merge bucketwise).
    pub fn merge(&mut self, other: &Metrics) {
        for (&name, &v) in &other.counters {
            self.inc(name, v);
        }
        for (&name, &v) in &other.gauges {
            self.gauge_max(name, v);
        }
        for (&name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
    }

    /// Appends one JSONL event per metric to `buf`, in sorted name
    /// order: `ctr` (counters), `gauge`, then `hist` events. `seq` is
    /// the caller's running sequence counter; `tick` stamps every line.
    pub fn dump_jsonl(&self, buf: &mut Vec<u8>, seq: &mut u64, tick: u64) {
        let head = |buf: &mut Vec<u8>, seq: &mut u64, ev: &str| {
            buf.extend_from_slice(b"{\"seq\":");
            json::push_u64(buf, *seq);
            *seq += 1;
            buf.extend_from_slice(b",\"tick\":");
            json::push_u64(buf, tick);
            buf.extend_from_slice(b",\"ev\":");
            json::push_str(buf, ev);
        };
        for (name, v) in &self.counters {
            head(buf, seq, "ctr");
            buf.extend_from_slice(b",\"name\":");
            json::push_str(buf, name);
            buf.extend_from_slice(b",\"v\":");
            json::push_u64(buf, *v);
            buf.extend_from_slice(b"}\n");
        }
        for (name, v) in &self.gauges {
            head(buf, seq, "gauge");
            buf.extend_from_slice(b",\"name\":");
            json::push_str(buf, name);
            buf.extend_from_slice(b",\"v\":");
            json::push_i64(buf, *v);
            buf.extend_from_slice(b"}\n");
        }
        for (name, h) in &self.hists {
            head(buf, seq, "hist");
            buf.extend_from_slice(b",\"name\":");
            json::push_str(buf, name);
            buf.extend_from_slice(b",\"n\":");
            json::push_u64(buf, h.count());
            buf.extend_from_slice(b",\"sum\":");
            json::push_u64(buf, h.sum());
            buf.extend_from_slice(b",\"min\":");
            json::push_u64(buf, h.min().unwrap_or(0));
            buf.extend_from_slice(b",\"p50\":");
            json::push_u64(buf, h.p50().unwrap_or(0));
            buf.extend_from_slice(b",\"p95\":");
            json::push_u64(buf, h.p95().unwrap_or(0));
            buf.extend_from_slice(b",\"max\":");
            json::push_u64(buf, h.max().unwrap_or(0));
            buf.extend_from_slice(b",\"buckets\":[");
            for (i, (lo, _hi, c)) in h.buckets().enumerate() {
                if i > 0 {
                    buf.push(b',');
                }
                buf.push(b'[');
                json::push_u64(buf, lo);
                buf.push(b',');
                json::push_u64(buf, c);
                buf.push(b']');
            }
            buf.extend_from_slice(b"]}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_hists_record() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.inc("a.hits", 2);
        m.inc("a.hits", 3);
        m.gauge_set("depth", 4);
        m.gauge_max("depth", 2);
        m.gauge_max("depth", 9);
        m.observe("hops", 3);
        m.observe("hops", 5);
        assert_eq!(m.counter("a.hits"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("depth"), Some(9));
        assert_eq!(m.hist("hops").map(|h| h.count()), Some(2));
        assert!(!m.is_empty());
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = Metrics::new();
        a.inc("c", 1);
        a.gauge_max("g", 5);
        a.observe("h", 1);
        let mut b = Metrics::new();
        b.inc("c", 2);
        b.inc("only_b", 7);
        b.gauge_max("g", 3);
        b.observe("h", 9);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(5));
        assert_eq!(a.hist("h").map(|h| h.count()), Some(2));
    }

    #[test]
    fn dump_is_sorted_and_parseable() {
        let mut m = Metrics::new();
        m.inc("z.last", 1);
        m.inc("a.first", 2);
        m.gauge_set("mid", -3);
        m.observe("lat", 100);
        let mut buf = Vec::new();
        let mut seq = 10;
        m.dump_jsonl(&mut buf, &mut seq, 42);
        assert_eq!(seq, 14);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Counters first, sorted by name.
        let first = crate::Json::parse(lines[0]).unwrap();
        assert_eq!(first.str_of("ev"), Some("ctr"));
        assert_eq!(first.str_of("name"), Some("a.first"));
        assert_eq!(first.u64_of("seq"), Some(10));
        assert_eq!(first.u64_of("tick"), Some(42));
        let gauge = crate::Json::parse(lines[2]).unwrap();
        assert_eq!(gauge.get("v").and_then(crate::Json::as_i64), Some(-3));
        let hist = crate::Json::parse(lines[3]).unwrap();
        assert_eq!(hist.u64_of("n"), Some(1));
        assert_eq!(hist.u64_of("max"), Some(100));
    }
}
