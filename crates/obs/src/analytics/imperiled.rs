//! `imperiled` mode: deliveries that almost didn't happen.
//!
//! A delivered message is *imperiled* when it survived only through
//! the fault machinery: it needed source-side retries, it landed close
//! to the timeout horizon, or its final attempt routed through a node
//! whose view was re-provisioned after the send (i.e. the original
//! view had gone stale under churn and delivery depended on repair).
//! The classifier [`classify`] is public so the simulator's replay
//! layer can apply the same taxonomy.

use super::{pct1, Mode, StreamReport, TrialHeader};
use crate::witness::RouteWitness;

/// Bounded number of stored example deliveries.
const EXAMPLES: usize = 10;

/// Why a delivered message counts as imperiled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Peril {
    /// Needed at least one source-side retry.
    pub retry_saved: bool,
    /// Latency within the final quarter of the timeout horizon
    /// (`latency * 4 >= timeout * 3`).
    pub near_timeout: bool,
    /// A final-attempt hop was decided on a view provisioned after the
    /// send — delivery depended on re-provisioning.
    pub reprov_saved: bool,
}

impl Peril {
    /// Whether any peril flag is set.
    pub fn any(&self) -> bool {
        self.retry_saved || self.near_timeout || self.reprov_saved
    }

    /// Compact flag rendering, e.g. `retry+reprov`.
    pub fn tags(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if self.retry_saved {
            parts.push("retry");
        }
        if self.near_timeout {
            parts.push("near-timeout");
        }
        if self.reprov_saved {
            parts.push("reprov");
        }
        if parts.is_empty() {
            parts.push("clean");
        }
        parts.join("+")
    }
}

/// Classifies a delivered witness. Returns `None` for non-delivered
/// messages; `timeout` enables the near-timeout test (in ticks, the
/// fault plan's delivery deadline).
pub fn classify(w: &RouteWitness, timeout: Option<u64>) -> Option<Peril> {
    if !w.delivered() {
        return None;
    }
    let latency = w.latency().unwrap_or(0);
    let near_timeout = match timeout {
        Some(t) if t > 0 => latency.saturating_mul(4) >= t.saturating_mul(3),
        _ => false,
    };
    let reprov_saved = w
        .final_attempt()
        .iter()
        .any(|h| h.provisioned_at > w.sent_at);
    Some(Peril {
        retry_saved: w.retries > 0,
        near_timeout,
        reprov_saved,
    })
}

/// Per-trial imperiled tallies.
#[derive(Clone, Debug, Default)]
struct TrialPeril {
    router: String,
    k: u32,
    delivered: u64,
    clean: u64,
    retry_saved: u64,
    near_timeout: u64,
    reprov_saved: u64,
    imperiled: u64,
}

/// One stored example, kept bounded by worst latency.
#[derive(Clone, Debug)]
struct Example {
    latency: u64,
    trial: usize,
    msg: u64,
    order: u64,
    line: String,
}

/// Streaming imperiled-delivery classification.
#[derive(Debug)]
pub struct ImperiledMode {
    timeout: Option<u64>,
    rows: Vec<TrialPeril>,
    examples: Vec<Example>,
    next_order: u64,
}

impl ImperiledMode {
    /// Creates a classifier; `timeout` (ticks) enables the
    /// near-timeout test.
    pub fn new(timeout: Option<u64>) -> Self {
        ImperiledMode {
            timeout,
            rows: Vec::new(),
            examples: Vec::new(),
            next_order: 0,
        }
    }
}

impl Mode for ImperiledMode {
    fn on_trial(&mut self, trial: &TrialHeader) {
        self.rows.push(TrialPeril {
            router: trial.router.clone(),
            k: trial.k,
            ..TrialPeril::default()
        });
    }

    fn on_witness(&mut self, w: &RouteWitness) {
        let Some(peril) = classify(w, self.timeout) else {
            return;
        };
        if self.rows.is_empty() {
            self.rows.push(TrialPeril {
                router: "-".to_string(),
                ..TrialPeril::default()
            });
        }
        let trial = self.rows.len().saturating_sub(1);
        let Some(row) = self.rows.last_mut() else {
            return;
        };
        row.delivered += 1;
        if !peril.any() {
            row.clean += 1;
            return;
        }
        row.imperiled += 1;
        row.retry_saved += u64::from(peril.retry_saved);
        row.near_timeout += u64::from(peril.near_timeout);
        row.reprov_saved += u64::from(peril.reprov_saved);

        let latency = w.latency().unwrap_or(0);
        let order = self.next_order;
        self.next_order += 1;
        self.examples.push(Example {
            latency,
            trial,
            msg: w.msg,
            order,
            line: format!(
                "trial {trial} msg {} {}->{} latency {latency} retries {}: {}",
                w.msg,
                w.s,
                w.t,
                w.retries,
                peril.tags()
            ),
        });
        if self.examples.len() > EXAMPLES {
            // Keep the worst-latency examples; strict order (latency
            // desc, trial asc, msg asc, arrival asc).
            if let Some(worst) = self
                .examples
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| {
                    (
                        e.latency,
                        std::cmp::Reverse(e.trial),
                        std::cmp::Reverse(e.msg),
                        std::cmp::Reverse(e.order),
                    )
                })
                .map(|(i, _)| i)
            {
                self.examples.swap_remove(worst);
            }
        }
    }

    fn render(&self, report: &StreamReport) -> String {
        let mut out = String::new();
        out.push_str("# tracecat imperiled\n\n");
        match self.timeout {
            Some(t) => out.push_str(&format!("timeout horizon: {t} ticks\n\n")),
            None => out.push_str("timeout horizon: none (near-timeout test disabled)\n\n"),
        }
        out.push_str(
            "| trial | router | k | delivered | clean | imperiled | retry-saved | \
             near-timeout | reprov-saved | imperiled share |\n",
        );
        out.push_str(
            "|------:|:-------|--:|----------:|------:|----------:|------------:|\
             -------------:|-------------:|----------------:|\n",
        );
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "| {i} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                r.router,
                r.k,
                r.delivered,
                r.clean,
                r.imperiled,
                r.retry_saved,
                r.near_timeout,
                r.reprov_saved,
                pct1(r.imperiled, r.delivered),
            ));
        }
        if !self.examples.is_empty() {
            let mut ex = self.examples.clone();
            ex.sort_by_key(|e| (std::cmp::Reverse(e.latency), e.trial, e.msg, e.order));
            out.push_str(&format!(
                "\nworst imperiled deliveries (top {}):\n",
                ex.len()
            ));
            for e in &ex {
                out.push_str(&format!("  {}\n", e.line));
            }
        }
        out.push_str(&format!(
            "\nstream: {} events, {} trials, {} witnesses\n",
            report.events, report.trials, report.witnesses
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::{run_mode, TailMode};
    use crate::witness::{collect_witnesses, parse_trace};

    fn delivered(msg: u64, retries: u32, sent: u64, arrive: u64, prov: u64) -> String {
        let mut t = format!("{{\"tick\":{sent},\"ev\":\"send\",\"msg\":{msg},\"s\":1,\"t\":4}}\n");
        t.push_str(&format!(
            "{{\"tick\":{sent},\"ev\":\"hop\",\"msg\":{msg},\"att\":{retries},\"node\":1,\"to\":4,\"rule\":\"r\",\"prov\":{prov}}}\n"
        ));
        if retries > 0 {
            t.push_str(&format!(
                "{{\"tick\":{sent},\"ev\":\"retry\",\"msg\":{msg},\"att\":{retries}}}\n"
            ));
        }
        t.push_str(&format!(
            "{{\"tick\":{arrive},\"ev\":\"deliver\",\"msg\":{msg},\"node\":4,\"hops\":1}}\n"
        ));
        t.push_str(&format!(
            "{{\"tick\":{arrive},\"ev\":\"fate\",\"msg\":{msg},\"fate\":\"delivered\"}}\n"
        ));
        t
    }

    #[test]
    fn classifies_retry_near_timeout_and_reprov() {
        let mut trace = String::new();
        trace.push_str(&delivered(0, 0, 0, 5, 0)); // clean
        trace.push_str(&delivered(1, 2, 10, 20, 0)); // retry-saved
        trace.push_str(&delivered(2, 0, 0, 190, 0)); // near 192-tick timeout
        trace.push_str(&delivered(3, 0, 100, 110, 150)); // reprov-saved
        let ws = collect_witnesses(&parse_trace(&trace).unwrap());
        let timeout = Some(192);
        let p0 = classify(&ws[0], timeout).unwrap();
        assert!(!p0.any());
        assert_eq!(p0.tags(), "clean");
        let p1 = classify(&ws[1], timeout).unwrap();
        assert!(p1.retry_saved && !p1.near_timeout && !p1.reprov_saved);
        let p2 = classify(&ws[2], timeout).unwrap();
        assert!(p2.near_timeout && !p2.retry_saved);
        let p3 = classify(&ws[3], timeout).unwrap();
        assert!(p3.reprov_saved);
        assert_eq!(p3.tags(), "reprov");
    }

    #[test]
    fn undelivered_messages_are_not_classified() {
        let trace = "{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":4}\n";
        let ws = collect_witnesses(&parse_trace(trace).unwrap());
        assert_eq!(classify(&ws[0], Some(100)), None);
    }

    #[test]
    fn near_timeout_boundary_is_three_quarters() {
        let mut trace = String::new();
        trace.push_str(&delivered(0, 0, 0, 75, 0));
        trace.push_str(&delivered(1, 0, 0, 74, 0));
        let ws = collect_witnesses(&parse_trace(&trace).unwrap());
        assert!(classify(&ws[0], Some(100)).unwrap().near_timeout);
        assert!(!classify(&ws[1], Some(100)).unwrap().near_timeout);
    }

    #[test]
    fn mode_renders_per_trial_table_and_examples() {
        let mut trace = String::from(
            "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-3\",\"k\":24}\n",
        );
        trace.push_str(&delivered(0, 0, 0, 5, 0));
        trace.push_str(&delivered(1, 1, 10, 20, 0));
        let mut m = ImperiledMode::new(Some(192));
        let rep = run_mode(trace.as_bytes(), 16, TailMode::Strict, &mut m).unwrap();
        let text = m.render(&rep);
        assert!(text.contains("timeout horizon: 192 ticks"), "{text}");
        assert!(
            text.contains("| 0 | algorithm-3 | 24 | 2 | 1 | 1 | 1 | 0 | 0 | 50.0% |"),
            "{text}"
        );
        assert!(
            text.contains("msg 1 1->4 latency 10 retries 1: retry"),
            "{text}"
        );
    }
}
