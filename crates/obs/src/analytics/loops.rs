//! `loops` mode: routing-loop detection and storage from hop
//! sequences.
//!
//! A routing loop is a node revisited within one attempt's route. The
//! paper's algorithms are provably loop-free on static graphs, so
//! every loop in a trace is fault-induced (stale views under churn) —
//! this mode counts them per trial, tracks cycle lengths in a
//! [`PowHistogram`], and stores a bounded set of example cycles. The
//! per-witness detector [`detect_loops`] is public so the simulator's
//! replay layer can classify the same way.

use super::{pct1, Mode, StreamReport, TrialHeader};
use crate::hist::PowHistogram;
use crate::witness::RouteWitness;

/// Bounded number of stored example cycles.
const EXAMPLES: usize = 10;

/// One detected routing loop: a node revisited within one attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopHit {
    /// Source-side attempt the loop occurred in.
    pub attempt: u32,
    /// The revisited node.
    pub node: u32,
    /// The cycle, from the first visit of `node` back to it.
    pub cycle: Vec<u32>,
}

impl LoopHit {
    /// Cycle length in hops.
    pub fn len(&self) -> u64 {
        self.cycle.len().saturating_sub(1) as u64
    }

    /// Whether the cycle is degenerate (should not happen: a cycle has
    /// at least one hop).
    pub fn is_empty(&self) -> bool {
        self.cycle.len() < 2
    }
}

/// Scans each attempt of a witness for the first revisited node.
/// Returns at most one [`LoopHit`] per attempt, in attempt order.
pub fn detect_loops(w: &RouteWitness) -> Vec<LoopHit> {
    let mut out = Vec::new();
    let last = w.hops.iter().map(|h| h.attempt).max().unwrap_or(0);
    for attempt in 0..=last {
        // Node sequence of this attempt: the origin, then each chosen
        // next node.
        let mut seen: Vec<u32> = vec![w.s];
        let mut hit = None;
        for h in w.hops.iter().filter(|h| h.attempt == attempt) {
            if let Some(first) = seen.iter().position(|&n| n == h.to) {
                let mut cycle: Vec<u32> = seen.get(first..).unwrap_or(&[]).to_vec();
                cycle.push(h.to);
                hit = Some(LoopHit {
                    attempt,
                    node: h.to,
                    cycle,
                });
                break;
            }
            seen.push(h.to);
        }
        out.extend(hit);
    }
    out
}

/// Per-trial loop tallies.
#[derive(Clone, Debug, Default)]
struct TrialLoops {
    router: String,
    k: u32,
    witnesses: u64,
    looped_msgs: u64,
    loops: u64,
    looped_fates: u64,
}

/// Streaming routing-loop analysis.
#[derive(Debug, Default)]
pub struct LoopsMode {
    rows: Vec<TrialLoops>,
    cycle_len: PowHistogram,
    examples: Vec<String>,
}

impl LoopsMode {
    /// Creates an empty loop analyzer.
    pub fn new() -> Self {
        LoopsMode::default()
    }
}

impl Mode for LoopsMode {
    fn on_trial(&mut self, trial: &TrialHeader) {
        self.rows.push(TrialLoops {
            router: trial.router.clone(),
            k: trial.k,
            ..TrialLoops::default()
        });
    }

    fn on_witness(&mut self, w: &RouteWitness) {
        let hits = detect_loops(w);
        let trial = self.rows.len().saturating_sub(1);
        if self.rows.is_empty() {
            self.rows.push(TrialLoops {
                router: "-".to_string(),
                ..TrialLoops::default()
            });
        }
        let Some(row) = self.rows.last_mut() else {
            return;
        };
        row.witnesses += 1;
        if w.fate.as_deref() == Some("looped") {
            row.looped_fates += 1;
        }
        if hits.is_empty() {
            return;
        }
        row.looped_msgs += 1;
        row.loops += hits.len() as u64;
        for hit in &hits {
            self.cycle_len.observe(hit.len());
            if self.examples.len() < EXAMPLES {
                let path: Vec<String> = hit.cycle.iter().map(|n| n.to_string()).collect();
                self.examples.push(format!(
                    "trial {trial} msg {} att {} fate {}: {}",
                    w.msg,
                    hit.attempt,
                    w.fate.as_deref().unwrap_or("in_flight"),
                    path.join("->")
                ));
            }
        }
    }

    fn render(&self, report: &StreamReport) -> String {
        let mut out = String::new();
        out.push_str("# tracecat loops\n\n");
        out.push_str(
            "| trial | router | k | witnesses | msgs w/ loop | loops | looped fate | loop share |\n",
        );
        out.push_str(
            "|------:|:-------|--:|----------:|-------------:|------:|------------:|-----------:|\n",
        );
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "| {i} | {} | {} | {} | {} | {} | {} | {} |\n",
                r.router,
                r.k,
                r.witnesses,
                r.looped_msgs,
                r.loops,
                r.looped_fates,
                pct1(r.looped_msgs, r.witnesses),
            ));
        }
        out.push_str(&format!("\ncycle lengths: {:?}\n", self.cycle_len));
        if !self.examples.is_empty() {
            out.push_str(&format!("\nexamples (first {}):\n", self.examples.len()));
            for e in &self.examples {
                out.push_str(&format!("  {e}\n"));
            }
        }
        out.push_str(&format!(
            "\nstream: {} events, {} trials, {} witnesses\n",
            report.events, report.trials, report.witnesses
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::{run_mode, TailMode};
    use crate::witness::{collect_witnesses, parse_trace};

    fn hop(tick: u64, msg: u64, att: u32, node: u32, to: u32) -> String {
        format!(
            "{{\"tick\":{tick},\"ev\":\"hop\",\"msg\":{msg},\"att\":{att},\"node\":{node},\"to\":{to},\"rule\":\"r\",\"prov\":0}}\n"
        )
    }

    #[test]
    fn detects_a_cycle_within_one_attempt() {
        let mut t = String::from("{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":9}\n");
        // 1 -> 2 -> 3 -> 2: node 2 revisited, cycle 2->3->2.
        t.push_str(&hop(0, 0, 0, 1, 2));
        t.push_str(&hop(1, 0, 0, 2, 3));
        t.push_str(&hop(2, 0, 0, 3, 2));
        let ws = collect_witnesses(&parse_trace(&t).unwrap());
        let hits = detect_loops(&ws[0]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].node, 2);
        assert_eq!(hits[0].cycle, vec![2, 3, 2]);
        assert_eq!(hits[0].len(), 2);
        assert!(!hits[0].is_empty());
    }

    #[test]
    fn revisiting_the_origin_is_a_loop() {
        let mut t = String::from("{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":5,\"t\":9}\n");
        t.push_str(&hop(0, 0, 0, 5, 6));
        t.push_str(&hop(1, 0, 0, 6, 5));
        let ws = collect_witnesses(&parse_trace(&t).unwrap());
        let hits = detect_loops(&ws[0]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].cycle, vec![5, 6, 5]);
    }

    #[test]
    fn attempts_are_scanned_independently() {
        let mut t = String::from("{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":9}\n");
        // Attempt 0 visits 2; attempt 1 also visits 2 — not a loop,
        // attempts restart from s.
        t.push_str(&hop(0, 0, 0, 1, 2));
        t.push_str(&hop(5, 0, 1, 1, 2));
        t.push_str(&hop(6, 0, 1, 2, 9));
        let ws = collect_witnesses(&parse_trace(&t).unwrap());
        assert!(detect_loops(&ws[0]).is_empty());
    }

    #[test]
    fn loop_free_route_yields_nothing() {
        let mut t = String::from("{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":4}\n");
        t.push_str(&hop(0, 0, 0, 1, 2));
        t.push_str(&hop(1, 0, 0, 2, 3));
        t.push_str(&hop(2, 0, 0, 3, 4));
        let ws = collect_witnesses(&parse_trace(&t).unwrap());
        assert!(detect_loops(&ws[0]).is_empty());
    }

    #[test]
    fn mode_counts_and_stores_examples() {
        let mut trace = String::from(
            "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-2\",\"k\":6}\n",
        );
        trace.push_str("{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":9}\n");
        trace.push_str(&hop(0, 0, 0, 1, 2));
        trace.push_str(&hop(1, 0, 0, 2, 1));
        trace.push_str("{\"tick\":2,\"ev\":\"fate\",\"msg\":0,\"fate\":\"looped\"}\n");
        trace.push_str("{\"tick\":3,\"ev\":\"send\",\"msg\":1,\"s\":3,\"t\":4}\n");
        trace.push_str(&hop(3, 1, 0, 3, 4));
        trace.push_str("{\"tick\":4,\"ev\":\"fate\",\"msg\":1,\"fate\":\"delivered\"}\n");
        let mut m = LoopsMode::new();
        let rep = run_mode(trace.as_bytes(), 16, TailMode::Strict, &mut m).unwrap();
        let text = m.render(&rep);
        assert!(
            text.contains("| 0 | algorithm-2 | 6 | 2 | 1 | 1 | 1 | 50.0% |"),
            "{text}"
        );
        assert!(
            text.contains("trial 0 msg 0 att 0 fate looped: 1->2->1"),
            "{text}"
        );
        assert!(text.contains("cycle lengths: p2{n=1"), "{text}");
    }
}
