//! Incremental witness fold: the streaming counterpart of
//! [`collect_witnesses`](crate::collect_witnesses).
//!
//! Holds only the witnesses of messages still in flight (a `BTreeMap`
//! keyed by message id — deterministic iteration, R2), emitting each
//! witness the moment its terminal `fate` arrives. This is what bounds
//! analytics memory by O(live messages) instead of O(trace size): a
//! chaos trial keeps at most one batch in flight at a time, so the
//! fold's footprint is independent of how many trials stream past.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::witness::{apply_event, witness_from_send, RouteWitness};

/// Streaming fold from message-scoped events to completed
/// [`RouteWitness`] values.
#[derive(Debug, Default)]
pub struct WitnessFold {
    open: BTreeMap<u64, RouteWitness>,
}

impl WitnessFold {
    /// Creates an empty fold.
    pub fn new() -> Self {
        WitnessFold::default()
    }

    /// Number of messages currently in flight.
    pub fn live(&self) -> usize {
        self.open.len()
    }

    /// Feeds one parsed event. Returns a witness the event *completed*:
    /// a terminal `fate` closes its message, and a repeated `send`
    /// (id reuse within a trace span) closes the displaced in-flight
    /// witness. Non-message events return `None` untouched.
    pub fn feed(&mut self, ev: &Json) -> Option<RouteWitness> {
        let kind = ev.str_of("ev")?;
        let tick = ev.u64_of("tick").unwrap_or(0);
        let msg = ev.u64_of("msg")?;
        if kind == "send" {
            return self.open.insert(msg, witness_from_send(ev, tick, msg));
        }
        if kind == "fate" {
            let mut w = self.open.remove(&msg)?;
            apply_event(&mut w, kind, tick, ev);
            return Some(w);
        }
        if let Some(w) = self.open.get_mut(&msg) {
            apply_event(w, kind, tick, ev);
        }
        None
    }

    /// Removes and returns every in-flight witness in message-id order.
    /// Called at trial boundaries and end of stream; these witnesses
    /// have `fate == None`.
    pub fn drain(&mut self) -> Vec<RouteWitness> {
        std::mem::take(&mut self.open).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::{collect_witnesses, parse_trace};

    const TRACE: &str = "\
{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":4}\n\
{\"seq\":1,\"tick\":0,\"ev\":\"hop\",\"msg\":0,\"att\":0,\"node\":1,\"to\":2,\"rule\":\"greedy\",\"prov\":0}\n\
{\"seq\":2,\"tick\":1,\"ev\":\"hop\",\"msg\":0,\"att\":0,\"node\":2,\"from\":1,\"to\":4,\"rule\":\"greedy\",\"prov\":0}\n\
{\"seq\":3,\"tick\":2,\"ev\":\"deliver\",\"msg\":0,\"node\":4,\"hops\":2}\n\
{\"seq\":4,\"tick\":2,\"ev\":\"fate\",\"msg\":0,\"fate\":\"delivered\"}\n\
{\"seq\":5,\"tick\":3,\"ev\":\"send\",\"msg\":1,\"s\":2,\"t\":3}\n\
{\"seq\":6,\"tick\":9,\"ev\":\"retry\",\"msg\":1,\"att\":1}\n";

    #[test]
    fn streaming_fold_matches_the_batch_collector() {
        let events = parse_trace(TRACE).unwrap();
        let batch = collect_witnesses(&events);
        let mut fold = WitnessFold::new();
        let mut streamed = Vec::new();
        for ev in &events {
            if let Some(w) = fold.feed(ev) {
                streamed.push(w);
            }
        }
        streamed.extend(fold.drain());
        assert_eq!(streamed, batch);
        assert_eq!(fold.live(), 0);
    }

    #[test]
    fn fate_closes_and_removes_the_message() {
        let events = parse_trace(TRACE).unwrap();
        let mut fold = WitnessFold::new();
        let mut closed = Vec::new();
        for ev in &events {
            closed.extend(fold.feed(ev));
        }
        assert_eq!(closed.len(), 1);
        assert!(closed[0].delivered());
        assert_eq!(closed[0].route(), vec![1, 2, 4]);
        // msg 1 never got a fate: still live until drained.
        assert_eq!(fold.live(), 1);
        let rest = fold.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].retries, 1);
        assert_eq!(rest[0].fate, None);
    }

    #[test]
    fn repeated_send_displaces_the_open_witness() {
        let text = "\
{\"tick\":0,\"ev\":\"send\",\"msg\":7,\"s\":0,\"t\":1}\n\
{\"tick\":2,\"ev\":\"send\",\"msg\":7,\"s\":5,\"t\":6}\n";
        let events = parse_trace(text).unwrap();
        let mut fold = WitnessFold::new();
        assert!(fold.feed(&events[0]).is_none());
        let displaced = fold.feed(&events[1]).expect("first generation displaced");
        assert_eq!(displaced.s, 0);
        assert_eq!(displaced.fate, None);
        assert_eq!(fold.drain()[0].s, 5);
    }

    #[test]
    fn non_message_events_are_ignored() {
        let text = "{\"tick\":4,\"ev\":\"fault\",\"kind\":\"crash\",\"node\":9}\n";
        let events = parse_trace(text).unwrap();
        let mut fold = WitnessFold::new();
        assert!(fold.feed(&events[0]).is_none());
        assert_eq!(fold.live(), 0);
    }
}
