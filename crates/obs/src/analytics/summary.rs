//! `summary` mode: the streaming rebuild of the original `tracecat
//! summary` pass — per-tick activity timeline, fate breakdown, and the
//! top-K slowest delivered routes.
//!
//! The batch version materialized every event and witness; this one
//! holds one open tick row, a bounded best-20 timeline set, a fate
//! tally, and a bounded top-K slow-route set — O(K) state regardless
//! of trace size. Selection uses strict total orders (ties broken by
//! arrival order), so greedy bounded top-K is exactly the global
//! top-K and output is identical across chunkings.

use std::collections::BTreeMap;

use super::{Mode, StreamReport, TrialHeader};
use crate::json::Json;
use crate::witness::RouteWitness;

const TIMELINE_ROWS: usize = 20;

/// Counts per event kind over one run of consecutive same-tick events.
#[derive(Clone, Debug, Default)]
struct TickRow {
    sends: u64,
    hops: u64,
    delivers: u64,
    losses: u64,
    retries: u64,
    faults: u64,
}

impl TickRow {
    fn total(&self) -> u64 {
        self.sends + self.hops + self.delivers + self.losses + self.retries + self.faults
    }
}

/// One delivered route in the slow set.
#[derive(Clone, Debug)]
struct SlowRoute {
    latency: u64,
    msg: u64,
    order: u64,
    s: u32,
    t: u32,
    hops: usize,
    retries: u32,
}

/// Streaming activity summary.
#[derive(Debug)]
pub struct SummaryMode {
    top: usize,
    open: Option<(u64, TickRow)>,
    /// Bounded best rows: `(arrival order, tick, row)`.
    best: Vec<(u64, u64, TickRow)>,
    closed_rows: u64,
    fates: BTreeMap<String, u64>,
    slow: Vec<SlowRoute>,
    next_order: u64,
}

impl SummaryMode {
    /// Creates a summary keeping the `top` slowest delivered routes.
    pub fn new(top: usize) -> Self {
        SummaryMode {
            top,
            open: None,
            best: Vec::new(),
            closed_rows: 0,
            fates: BTreeMap::new(),
            slow: Vec::new(),
            next_order: 0,
        }
    }

    fn close_open(&mut self) {
        let Some((tick, row)) = self.open.take() else {
            return;
        };
        let order = self.closed_rows;
        self.closed_rows += 1;
        self.best.push((order, tick, row));
        if self.best.len() > TIMELINE_ROWS {
            // Evict the worst under the strict order (total desc,
            // arrival asc): smallest total, ties to the later arrival.
            if let Some(worst) = self
                .best
                .iter()
                .enumerate()
                .min_by_key(|(_, (order, _, row))| (row.total(), std::cmp::Reverse(*order)))
                .map(|(i, _)| i)
            {
                self.best.swap_remove(worst);
            }
        }
    }
}

impl Mode for SummaryMode {
    fn on_trial(&mut self, _trial: &TrialHeader) {}

    fn on_event(&mut self, _line: usize, ev: &Json) {
        let Some(kind) = ev.str_of("ev") else {
            return;
        };
        let tick = ev.u64_of("tick").unwrap_or(0);
        if !matches!(self.open, Some((t, _)) if t == tick) {
            self.close_open();
            self.open = Some((tick, TickRow::default()));
        }
        let Some((_, row)) = self.open.as_mut() else {
            return;
        };
        match kind {
            "send" => row.sends += 1,
            "hop" => row.hops += 1,
            "deliver" => row.delivers += 1,
            "lost" => row.losses += 1,
            "retry" => row.retries += 1,
            "fault" => row.faults += 1,
            _ => {}
        }
    }

    fn on_witness(&mut self, w: &RouteWitness) {
        let tag = w.fate.clone().unwrap_or_else(|| "in_flight".to_string());
        *self.fates.entry(tag).or_insert(0) += 1;
        if !w.delivered() {
            return;
        }
        let order = self.next_order;
        self.next_order += 1;
        self.slow.push(SlowRoute {
            latency: w.latency().unwrap_or(0),
            msg: w.msg,
            order,
            s: w.s,
            t: w.t,
            hops: w.route().len().saturating_sub(1),
            retries: w.retries,
        });
        if self.slow.len() > self.top {
            // Evict the worst under (latency desc, msg desc, arrival
            // asc): smallest latency, then smallest msg, ties to the
            // later arrival.
            if let Some(worst) = self
                .slow
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.latency, r.msg, std::cmp::Reverse(r.order)))
                .map(|(i, _)| i)
            {
                self.slow.swap_remove(worst);
            }
        }
    }

    fn render(&self, report: &StreamReport) -> String {
        // Final open tick row is closed into a local copy of the
        // bounded set (render takes `&self`).
        let mut best = self.best.clone();
        let mut closed_rows = self.closed_rows;
        if let Some((tick, row)) = self.open.clone() {
            let order = closed_rows;
            closed_rows += 1;
            best.push((order, tick, row));
            if best.len() > TIMELINE_ROWS {
                if let Some(worst) = best
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (order, _, row))| (row.total(), std::cmp::Reverse(*order)))
                    .map(|(i, _)| i)
                {
                    best.swap_remove(worst);
                }
            }
        }
        best.sort_by_key(|&(order, _, _)| order);

        let mut out = String::new();
        out.push_str(&format!(
            "events  {} ({} trial section(s), {} witnesses)\n",
            report.events,
            report.trials.max(1),
            report.witnesses
        ));

        let mut fates: Vec<(&String, &u64)> = self.fates.iter().collect();
        fates.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        out.push_str("fates\n");
        for (tag, n) in fates {
            out.push_str(&format!("  {tag:<10} {n}\n"));
        }

        out.push_str(&format!(
            "timeline (top {} of {} active ticks)\n",
            best.len(),
            closed_rows
        ));
        out.push_str("  tick   sends  hops  deliv  lost  retry  fault\n");
        for (_, tick, r) in &best {
            out.push_str(&format!(
                "  {tick:<6} {:<6} {:<5} {:<6} {:<5} {:<6} {}\n",
                r.sends, r.hops, r.delivers, r.losses, r.retries, r.faults
            ));
        }

        let mut slow = self.slow.clone();
        slow.sort_by_key(|r| (std::cmp::Reverse((r.latency, r.msg)), r.order));
        out.push_str(&format!("slowest delivered routes (top {})\n", slow.len()));
        out.push_str("  msg    s->t       hops  retries  latency\n");
        for r in &slow {
            out.push_str(&format!(
                "  {:<6} {:>3}->{:<5} {:<5} {:<8} {}\n",
                r.msg, r.s, r.t, r.hops, r.retries, r.latency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::{run_mode, TailMode};

    const TRACE: &str = concat!(
        "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-1\",\"k\":12}\n",
        "{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":4}\n",
        "{\"seq\":1,\"tick\":0,\"ev\":\"hop\",\"msg\":0,\"att\":0,\"node\":1,\"to\":4,\"rule\":\"greedy\",\"prov\":0}\n",
        "{\"seq\":2,\"tick\":3,\"ev\":\"deliver\",\"msg\":0,\"node\":4,\"hops\":1}\n",
        "{\"seq\":3,\"tick\":3,\"ev\":\"fate\",\"msg\":0,\"fate\":\"delivered\"}\n",
        "{\"seq\":4,\"tick\":5,\"ev\":\"send\",\"msg\":1,\"s\":2,\"t\":9}\n",
        "{\"seq\":5,\"tick\":6,\"ev\":\"fate\",\"msg\":1,\"fate\":\"dropped\",\"why\":\"loss\"}\n",
    );

    fn render(text: &str, top: usize) -> String {
        let mut m = SummaryMode::new(top);
        let r = run_mode(text.as_bytes(), 16, TailMode::Strict, &mut m).unwrap();
        m.render(&r)
    }

    #[test]
    fn summarizes_fates_timeline_and_slow_routes() {
        let text = render(TRACE, 5);
        assert!(
            text.contains("events  7 (1 trial section(s), 2 witnesses)"),
            "{text}"
        );
        assert!(text.contains("  delivered  1"), "{text}");
        assert!(text.contains("  dropped    1"), "{text}");
        assert!(
            text.contains("timeline (top 4 of 4 active ticks)"),
            "{text}"
        );
        assert!(text.contains("slowest delivered routes (top 1)"), "{text}");
        assert!(text.contains("    1->4"), "{text}");
    }

    #[test]
    fn bounded_sets_match_unbounded_selection() {
        // Many distinct ticks: bounded timeline keeps the 20 busiest.
        let mut trace = String::new();
        for i in 0..200u64 {
            // Tick i gets i%7 + 1 hop events.
            for j in 0..=(i % 7) {
                trace.push_str(&format!(
                    "{{\"tick\":{i},\"ev\":\"hop\",\"msg\":{j},\"att\":0,\"node\":0,\"to\":1,\"rule\":\"r\",\"prov\":0}}\n"
                ));
            }
        }
        let text = render(&trace, 3);
        assert!(
            text.contains("timeline (top 20 of 200 active ticks)"),
            "{text}"
        );
        // Only max-weight ticks (7 events, i%7==6) survive; the first
        // twenty such ticks are 6, 13, ..., 139.
        assert!(text.contains("\n  6      0      7"), "{text}");
        assert!(text.contains("\n  139    0      7"), "{text}");
        assert!(!text.contains("\n  146    "), "{text}");
    }
}
