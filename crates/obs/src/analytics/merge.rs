//! Trial-block stream surgery: `merge`, `split`, and `chunk`.
//!
//! Multi-trial traces are sequences of *trial blocks*: a header line
//! `{"seq":0,"tick":0,"ev":"trial",...}` followed by that trial's
//! recorder span. The parallel trial driver assigns trial `i` to
//! worker `i % W` (strided), so per-worker shard files hold every
//! `W`-th block in order. [`merge_traces`] inverts that assignment —
//! reading one block from each shard round-robin — which makes the
//! merged output byte-identical to the single-writer trace.
//! [`split_trace`] is the forward direction (shard one corpus for
//! parallel analysis; `merge ∘ split` is the identity), and
//! [`chunk_trace`] cuts a corpus into size-bounded files along trial
//! boundaries so each piece stays independently analyzable.
//!
//! All three stream: memory is one reader chunk plus carry per input,
//! never O(trace size). Shape is checked (content before the first
//! header is a [`StreamError::Shape`]) and tails are strict — a torn
//! final line is an error, since surgery on a half-written trace would
//! silently corrupt it.

use std::io::{Read, Write};

use super::reader::LineReader;
use super::StreamError;

/// Recognizes the trial-block header line the trace writers emit.
/// Headers are written with `seq` and `tick` pinned to zero, so the
/// byte prefix is exact; the `"ev":"trial"` component distinguishes it
/// from the first recorder line of a span (whose `seq` is also 0).
pub fn is_trial_header(line: &[u8]) -> bool {
    line.starts_with(b"{\"seq\":0,\"tick\":0,\"ev\":\"trial\"")
}

/// What one merge/split/chunk pass moved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SurgeryReport {
    /// Trial blocks processed.
    pub trials: u64,
    /// Lines written (headers included).
    pub lines: u64,
    /// Bytes written (terminators included).
    pub bytes: u64,
}

fn write_line<W: Write>(out: &mut W, bytes: &[u8], line: usize) -> Result<(), StreamError> {
    out.write_all(bytes)
        .and_then(|()| out.write_all(b"\n"))
        .map_err(|err| StreamError::Io { line, err })
}

/// One shard being consumed block-by-block.
struct Shard<R> {
    rd: LineReader<R>,
    /// The header of the next unconsumed block, once seen.
    pending: Option<Vec<u8>>,
}

/// What ended a block copy.
enum BlockEnd {
    Eof,
    Header(Vec<u8>),
}

/// Copies lines until EOF or the next trial header, which is returned
/// (not written).
fn copy_block<R: Read, W: Write>(
    rd: &mut LineReader<R>,
    out: &mut W,
    report: &mut SurgeryReport,
) -> Result<BlockEnd, StreamError> {
    loop {
        let Some(l) = rd.next_line()? else {
            return Ok(BlockEnd::Eof);
        };
        if !l.terminated {
            return Err(StreamError::TruncatedTail { line: l.number });
        }
        if is_trial_header(l.bytes) {
            return Ok(BlockEnd::Header(l.bytes.to_vec()));
        }
        let number = l.number;
        let len = l.bytes.len() as u64;
        write_line(out, l.bytes, number)?;
        report.lines += 1;
        report.bytes += len + 1;
    }
}

/// Reads a shard's first header, rejecting content before it.
fn prime<R: Read>(rd: &mut LineReader<R>) -> Result<Option<Vec<u8>>, StreamError> {
    loop {
        let Some(l) = rd.next_line()? else {
            return Ok(None);
        };
        if !l.terminated {
            return Err(StreamError::TruncatedTail { line: l.number });
        }
        if l.bytes.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        if is_trial_header(l.bytes) {
            return Ok(Some(l.bytes.to_vec()));
        }
        return Err(StreamError::Shape {
            line: l.number,
            what: "expected a trial header as the first line of a shard",
        });
    }
}

/// Merges per-worker shard traces back into single-writer trial order:
/// one block from each shard, round-robin in shard order, until all
/// are exhausted (the inverse of the driver's `trial i → worker i % W`
/// assignment).
///
/// # Errors
///
/// Line-numbered [`StreamError`]s from any input (line numbers are
/// per-shard), [`StreamError::Shape`] for a shard that does not start
/// with a trial header, and io failures on `out`.
pub fn merge_traces<R: Read, W: Write>(
    inputs: Vec<R>,
    buf_bytes: usize,
    out: &mut W,
) -> Result<SurgeryReport, StreamError> {
    let mut report = SurgeryReport::default();
    let mut shards: Vec<Shard<R>> = Vec::with_capacity(inputs.len());
    for src in inputs {
        let mut rd = LineReader::new(src, buf_bytes);
        let pending = prime(&mut rd)?;
        shards.push(Shard { rd, pending });
    }
    loop {
        let mut any = false;
        for s in shards.iter_mut() {
            let Some(header) = s.pending.take() else {
                continue;
            };
            any = true;
            report.trials += 1;
            report.lines += 1;
            report.bytes += header.len() as u64 + 1;
            write_line(out, &header, 0)?;
            match copy_block(&mut s.rd, out, &mut report)? {
                BlockEnd::Eof => {}
                BlockEnd::Header(h) => s.pending = Some(h),
            }
        }
        if !any {
            break;
        }
    }
    out.flush()
        .map_err(|err| StreamError::Io { line: 0, err })?;
    Ok(report)
}

/// Splits a single-writer trace into `outs.len()` strided shards:
/// trial block `i` goes to shard `i % outs.len()`, matching the
/// parallel driver's assignment so [`merge_traces`] restores the
/// original bytes exactly.
///
/// # Errors
///
/// [`StreamError::Shape`] when content precedes the first header, plus
/// the reader's line-numbered errors; `outs` must be non-empty
/// ([`StreamError::Shape`] at line 0 otherwise).
pub fn split_trace<R: Read, W: Write>(
    input: R,
    buf_bytes: usize,
    outs: &mut [W],
) -> Result<SurgeryReport, StreamError> {
    if outs.is_empty() {
        return Err(StreamError::Shape {
            line: 0,
            what: "split needs at least one output shard",
        });
    }
    let mut report = SurgeryReport::default();
    let mut rd = LineReader::new(input, buf_bytes);
    let mut pending = prime(&mut rd)?;
    let mut trial = 0usize;
    while let Some(header) = pending.take() {
        let idx = trial % outs.len();
        trial += 1;
        let Some(out) = outs.get_mut(idx) else {
            break;
        };
        report.trials += 1;
        report.lines += 1;
        report.bytes += header.len() as u64 + 1;
        write_line(out, &header, 0)?;
        match copy_block(&mut rd, out, &mut report)? {
            BlockEnd::Eof => {}
            BlockEnd::Header(h) => pending = Some(h),
        }
    }
    for out in outs.iter_mut() {
        out.flush()
            .map_err(|err| StreamError::Io { line: 0, err })?;
    }
    Ok(report)
}

/// Cuts a trace into size-bounded pieces along trial boundaries: a new
/// output is opened (via `open(index)`) for the first block and then
/// whenever the current piece has reached `max_bytes` at a block
/// boundary. Every piece starts with a trial header, so each is a
/// valid standalone trace.
///
/// # Errors
///
/// As [`split_trace`], plus io failures from `open`.
pub fn chunk_trace<R, W, F>(
    input: R,
    buf_bytes: usize,
    max_bytes: u64,
    mut open: F,
) -> Result<(SurgeryReport, usize), StreamError>
where
    R: Read,
    W: Write,
    F: FnMut(usize) -> std::io::Result<W>,
{
    let mut report = SurgeryReport::default();
    let mut rd = LineReader::new(input, buf_bytes);
    let mut pending = prime(&mut rd)?;
    let mut pieces = 0usize;
    let mut current: Option<(W, u64)> = None;
    while let Some(header) = pending.take() {
        if matches!(current, Some((_, written)) if written >= max_bytes.max(1)) {
            if let Some((mut done, _)) = current.take() {
                done.flush()
                    .map_err(|err| StreamError::Io { line: 0, err })?;
            }
        }
        if current.is_none() {
            let w = open(pieces).map_err(|err| StreamError::Io { line: 0, err })?;
            pieces += 1;
            current = Some((w, 0));
        }
        let Some((out, written)) = current.as_mut() else {
            break;
        };
        report.trials += 1;
        report.lines += 1;
        report.bytes += header.len() as u64 + 1;
        *written += header.len() as u64 + 1;
        write_line(out, &header, 0)?;
        let before = report.bytes;
        match copy_block(&mut rd, out, &mut report)? {
            BlockEnd::Eof => {}
            BlockEnd::Header(h) => pending = Some(h),
        }
        *written += report.bytes - before;
    }
    if let Some((mut done, _)) = current.take() {
        done.flush()
            .map_err(|err| StreamError::Io { line: 0, err })?;
    }
    Ok((report, pieces))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(router: &str, k: u32, msgs: u32) -> String {
        let mut out = format!(
            "{{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"{router}\",\"k\":{k}}}\n"
        );
        for m in 0..msgs {
            out.push_str(&format!(
                "{{\"seq\":{m},\"tick\":0,\"ev\":\"send\",\"msg\":{m},\"s\":1,\"t\":2}}\n"
            ));
        }
        out
    }

    fn corpus() -> String {
        (0..7)
            .map(|i| block(&format!("r{i}"), i, i % 3 + 1))
            .collect()
    }

    #[test]
    fn split_then_merge_is_the_identity() {
        let whole = corpus();
        for shards in [1usize, 2, 3, 4, 8] {
            let mut outs: Vec<Vec<u8>> = vec![Vec::new(); shards];
            split_trace(whole.as_bytes(), 16, &mut outs).unwrap();
            let inputs: Vec<&[u8]> = outs.iter().map(|v| v.as_slice()).collect();
            let mut merged = Vec::new();
            let rep = merge_traces(inputs, 16, &mut merged).unwrap();
            assert_eq!(merged, whole.as_bytes(), "shards={shards}");
            assert_eq!(rep.trials, 7);
            assert_eq!(rep.bytes, whole.len() as u64);
        }
    }

    #[test]
    fn split_assigns_strided_blocks() {
        let whole = corpus();
        let mut outs: Vec<Vec<u8>> = vec![Vec::new(); 3];
        split_trace(whole.as_bytes(), 16, &mut outs).unwrap();
        let s0 = String::from_utf8(outs[0].clone()).unwrap();
        assert!(s0.contains("\"router\":\"r0\""));
        assert!(s0.contains("\"router\":\"r3\""));
        assert!(s0.contains("\"router\":\"r6\""));
        assert!(!s0.contains("\"router\":\"r1\""));
        let s1 = String::from_utf8(outs[1].clone()).unwrap();
        assert!(s1.contains("\"router\":\"r1\"") && s1.contains("\"router\":\"r4\""));
    }

    #[test]
    fn merge_rejects_a_headerless_shard() {
        let bad = "{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0}\n";
        let mut out = Vec::new();
        let err = merge_traces(vec![bad.as_bytes()], 16, &mut out).unwrap_err();
        assert!(matches!(err, StreamError::Shape { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn merge_rejects_a_torn_shard() {
        let torn = block("r0", 1, 2);
        let torn = &torn[..torn.len() - 1];
        let mut out = Vec::new();
        let err = merge_traces(vec![torn.as_bytes()], 16, &mut out).unwrap_err();
        assert!(matches!(err, StreamError::TruncatedTail { .. }), "{err:?}");
    }

    #[test]
    fn empty_shards_are_tolerated() {
        let whole = block("solo", 9, 2);
        let inputs: Vec<&[u8]> = vec![whole.as_bytes(), b""];
        let mut merged = Vec::new();
        merge_traces(inputs, 16, &mut merged).unwrap();
        assert_eq!(merged, whole.as_bytes());
    }

    #[test]
    fn chunks_cut_on_trial_boundaries() {
        let whole = corpus();
        // Writers that share a grow-on-open piece store, since
        // `chunk_trace` owns the `W` values it opens.
        struct Sink(std::rc::Rc<std::cell::RefCell<Vec<Vec<u8>>>>, usize);
        impl Write for Sink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut()[self.1].extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let cell = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let cell2 = cell.clone();
        let (rep, n) = chunk_trace(whole.as_bytes(), 16, 150, move |i| {
            cell2.borrow_mut().push(Vec::new());
            Ok(Sink(cell2.clone(), i))
        })
        .unwrap();
        let pieces: Vec<Vec<u8>> = cell.borrow().clone();
        assert!(n >= 2, "150-byte cap must cut {} bytes", whole.len());
        assert_eq!(pieces.len(), n);
        // Every piece starts with a header and re-concatenates to the
        // original corpus.
        let mut joined = Vec::new();
        for p in &pieces {
            assert!(is_trial_header(p.split(|&b| b == b'\n').next().unwrap()));
            joined.extend_from_slice(p);
        }
        assert_eq!(joined, whole.as_bytes());
        assert_eq!(rep.trials, 7);
    }

    #[test]
    fn header_detection_requires_the_trial_event() {
        assert!(is_trial_header(
            b"{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"x\",\"k\":1}"
        ));
        // First recorder line of a span also has seq 0 — not a header.
        assert!(!is_trial_header(
            b"{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0}"
        ));
    }
}
