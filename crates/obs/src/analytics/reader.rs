//! Chunked line reader with a fixed-size buffer.
//!
//! The streaming analogue of `graph::io::from_edgelist_reader`: bytes
//! are pulled through one fixed `buf_bytes` chunk, lines are split on
//! `\n` byte-wise, and a line that straddles chunk boundaries is
//! carried in a reusable side buffer. Steady-state operation performs
//! no per-line allocation (the carry reuses its capacity), which is
//! what the R6 hot-path lint scope pins for this file.

use super::StreamError;

/// Default chunk size for streaming reads, matching
/// `graph::io::EDGELIST_CHUNK_BYTES`.
pub const DEFAULT_BUF_BYTES: usize = 64 * 1024;

/// One line yielded by [`LineReader::next_line`], without its
/// terminator.
#[derive(Debug)]
pub struct Line<'a> {
    /// 1-based line number.
    pub number: usize,
    /// Line contents, excluding the trailing `\n`.
    pub bytes: &'a [u8],
    /// Whether the line ended with `\n`. Only the final line of a
    /// stream can be unterminated.
    pub terminated: bool,
}

/// Pull-based chunked line splitter over any [`std::io::Read`].
///
/// Memory use is exactly `buf_bytes` plus the longest single line seen
/// (the carry buffer) — independent of stream length.
#[derive(Debug)]
pub struct LineReader<R> {
    src: R,
    chunk: Vec<u8>,
    filled: usize,
    pos: usize,
    carry: Vec<u8>,
    carry_live: bool,
    line: usize,
    eof: bool,
}

impl<R: std::io::Read> LineReader<R> {
    /// Creates a reader pulling through a fixed `buf_bytes` chunk
    /// (clamped to at least 1).
    pub fn new(src: R, buf_bytes: usize) -> Self {
        LineReader {
            src,
            chunk: vec![0u8; buf_bytes.max(1)],
            filled: 0,
            pos: 0,
            carry: Vec::new(),
            carry_live: false,
            line: 0,
            eof: false,
        }
    }

    /// Yields the next line, or `Ok(None)` at end of stream. The
    /// returned slice borrows the reader and is invalidated by the
    /// next call.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] when the underlying reader fails, attributed
    /// to the 1-based number of the line being read.
    pub fn next_line(&mut self) -> Result<Option<Line<'_>>, StreamError> {
        if self.carry_live {
            self.carry.clear();
            self.carry_live = false;
        }
        loop {
            let window = self.chunk.get(self.pos..self.filled).unwrap_or(&[]);
            match window.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    let start = self.pos;
                    self.pos = start + i + 1;
                    self.line += 1;
                    let number = self.line;
                    if self.carry.is_empty() {
                        let bytes = self.chunk.get(start..start + i).unwrap_or(&[]);
                        return Ok(Some(Line {
                            number,
                            bytes,
                            terminated: true,
                        }));
                    }
                    let head = self.chunk.get(start..start + i).unwrap_or(&[]);
                    self.carry.extend_from_slice(head);
                    self.carry_live = true;
                    return Ok(Some(Line {
                        number,
                        bytes: &self.carry,
                        terminated: true,
                    }));
                }
                None => {
                    self.carry.extend_from_slice(window);
                    self.pos = 0;
                    self.filled = 0;
                    if self.eof {
                        if self.carry.is_empty() {
                            return Ok(None);
                        }
                        self.line += 1;
                        self.carry_live = true;
                        return Ok(Some(Line {
                            number: self.line,
                            bytes: &self.carry,
                            terminated: false,
                        }));
                    }
                    match self.src.read(&mut self.chunk) {
                        Ok(0) => self.eof = true,
                        Ok(got) => self.filled = got,
                        Err(err) => {
                            return Err(StreamError::Io {
                                line: self.line + 1,
                                err,
                            })
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reader that yields one byte per `read` call, the worst case for
    /// chunk-boundary handling.
    struct OneByte<'a>(&'a [u8]);

    impl std::io::Read for OneByte<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            match (self.0.split_first(), out.first_mut()) {
                (Some((&b, rest)), Some(slot)) => {
                    *slot = b;
                    self.0 = rest;
                    Ok(1)
                }
                _ => Ok(0),
            }
        }
    }

    /// Reader that fails after yielding a prefix.
    struct Dying<'a> {
        left: &'a [u8],
    }

    impl std::io::Read for Dying<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.left.is_empty() {
                return Err(std::io::Error::other("wire cut"));
            }
            let n = self.left.len().min(out.len());
            let (head, rest) = self.left.split_at(n);
            if let Some(dst) = out.get_mut(..n) {
                dst.copy_from_slice(head);
            }
            self.left = rest;
            Ok(n)
        }
    }

    fn drain<R: std::io::Read>(mut rd: LineReader<R>) -> Vec<(usize, String, bool)> {
        let mut out = Vec::new();
        while let Some(l) = rd.next_line().unwrap() {
            out.push((
                l.number,
                String::from_utf8(l.bytes.to_vec()).unwrap(),
                l.terminated,
            ));
        }
        out
    }

    #[test]
    fn splits_lines_at_every_buffer_size() {
        let text = b"alpha\nbeta\n\ngamma delta\n";
        let want = vec![
            (1, "alpha".to_string(), true),
            (2, "beta".to_string(), true),
            (3, String::new(), true),
            (4, "gamma delta".to_string(), true),
        ];
        for buf in [1, 2, 3, 5, 7, 64, 1 << 16] {
            assert_eq!(drain(LineReader::new(&text[..], buf)), want, "buf={buf}");
        }
    }

    #[test]
    fn carries_lines_across_short_reads() {
        let text = b"a long line that will straddle many one-byte reads\nshort\n";
        let got = drain(LineReader::new(OneByte(text), 8));
        assert_eq!(got.len(), 2);
        assert_eq!(
            got[0].1,
            "a long line that will straddle many one-byte reads"
        );
        assert_eq!(got[1], (2, "short".to_string(), true));
    }

    #[test]
    fn final_line_without_newline_is_unterminated() {
        let got = drain(LineReader::new(&b"one\ntwo"[..], 2));
        assert_eq!(
            got,
            vec![(1, "one".to_string(), true), (2, "two".to_string(), false)]
        );
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(drain(LineReader::new(&b""[..], 4)).is_empty());
    }

    #[test]
    fn io_error_is_attributed_to_the_line_being_read() {
        let mut rd = LineReader::new(
            Dying {
                left: b"first\nsec",
            },
            4,
        );
        assert_eq!(rd.next_line().unwrap().unwrap().bytes, b"first");
        let err = rd.next_line().unwrap_err();
        match err {
            StreamError::Io { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_buf_bytes_is_clamped() {
        let got = drain(LineReader::new(&b"x\ny\n"[..], 0));
        assert_eq!(got.len(), 2);
    }
}
