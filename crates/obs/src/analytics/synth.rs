//! Deterministic synthetic trace generator.
//!
//! [`SynthTrace`] implements [`std::io::Read`] and produces a
//! schema-conformant multi-trial JSONL trace *incrementally* — O(one
//! message block) of state regardless of how many gigabytes are drawn.
//! That makes it the source for the bounded-memory proof (stream a
//! ≥100 MB corpus through `stats` without materializing it) and the
//! `tracecat_mb_per_sec` perfsmoke probe. Same parameters → same
//! bytes, on every platform: the generator carries its own xorshift
//! state and never consults a clock.

use std::io::Read;

/// A deterministic, incrementally generated JSONL trace.
#[derive(Debug)]
pub struct SynthTrace {
    trials: u64,
    msgs_per_trial: u64,
    trial: u64,
    msg: u64,
    seq: u64,
    state: u64,
    buf: Vec<u8>,
    pos: usize,
}

impl SynthTrace {
    /// A trace of `trials` trial blocks with `msgs_per_trial` message
    /// journeys each, seeded by `seed`.
    pub fn new(trials: u64, msgs_per_trial: u64, seed: u64) -> Self {
        SynthTrace {
            trials,
            msgs_per_trial,
            trial: 0,
            msg: 0,
            seq: 0,
            state: seed | 1,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — self-contained so obs stays dependency-free.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn line(&mut self, tick: u64, body: &str) {
        use std::io::Write as _;
        let seq = self.seq;
        self.seq += 1;
        let _ = writeln!(self.buf, "{{\"seq\":{seq},\"tick\":{tick},{body}}}");
    }

    /// Generates the next unit (a trial header or one message journey)
    /// into the internal buffer.
    fn refill(&mut self) {
        if self.trial >= self.trials {
            return;
        }
        if self.msg == 0 {
            use std::io::Write as _;
            let routers = ["algorithm-1", "algorithm-1b", "algorithm-2", "algorithm-3"];
            let router = routers
                .get((self.trial % 4) as usize)
                .copied()
                .unwrap_or("algorithm-1");
            let k = 6 + (self.trial % 5) * 6;
            let _ = writeln!(
                self.buf,
                "{{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"{router}\",\"k\":{k}}}"
            );
            self.seq = 0;
        }
        let msg = self.msg;
        let tick = msg / 4;
        let s = self.next_rand() % 997;
        let t = self.next_rand() % 997;
        let hops = 2 + self.next_rand() % 9;
        self.line(
            tick,
            &format!("\"ev\":\"send\",\"msg\":{msg},\"s\":{s},\"t\":{t}"),
        );
        let retried = msg % 5 == 4;
        let lost = msg % 7 == 6;
        let attempt = u64::from(retried);
        if retried {
            self.line(
                tick,
                &format!("\"ev\":\"retry\",\"msg\":{msg},\"att\":{attempt}"),
            );
        }
        let mut node = s;
        let mut prev: Option<u64> = None;
        for h in 0..hops {
            let to = if h + 1 == hops {
                t
            } else {
                self.next_rand() % 997
            };
            let prov = if msg % 11 == 10 { tick + 1 } else { 0 };
            // `from` is the node the message arrived from; absent at
            // the origin. Rendered mid-object.
            let from = match prev {
                None => String::new(),
                Some(p) => format!("\"from\":{p},"),
            };
            let rule = self.next_rand() % 4;
            self.line(
                tick + h,
                &format!(
                    "\"ev\":\"hop\",\"msg\":{msg},\"att\":{attempt},\"node\":{node},{from}\"to\":{to},\"rule\":\"rule-{rule}\",\"prov\":{prov}"
                ),
            );
            prev = Some(node);
            node = to;
        }
        let done = tick + hops;
        if lost {
            self.line(done, &format!("\"ev\":\"lost\",\"msg\":{msg}"));
            self.line(
                done,
                &format!("\"ev\":\"fate\",\"msg\":{msg},\"fate\":\"dropped\",\"why\":\"loss\""),
            );
        } else {
            self.line(
                done,
                &format!("\"ev\":\"deliver\",\"msg\":{msg},\"node\":{t},\"hops\":{hops}"),
            );
            self.line(
                done,
                &format!("\"ev\":\"fate\",\"msg\":{msg},\"fate\":\"delivered\""),
            );
        }
        self.msg += 1;
        if self.msg >= self.msgs_per_trial {
            self.msg = 0;
            self.trial += 1;
        }
    }
}

impl Read for SynthTrace {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.refill();
            if self.buf.is_empty() {
                return Ok(0);
            }
        }
        let src = self.buf.get(self.pos..).unwrap_or(&[]);
        let n = src.len().min(out.len());
        if let (Some(dst), Some(src)) = (out.get_mut(..n), src.get(..n)) {
            dst.copy_from_slice(src);
        }
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::merge::is_trial_header;
    use crate::analytics::stats::StatsMode;
    use crate::analytics::{run_mode, TailMode};

    fn drain(trials: u64, msgs: u64, seed: u64) -> Vec<u8> {
        let mut out = Vec::new();
        SynthTrace::new(trials, msgs, seed)
            .read_to_end(&mut out)
            .unwrap();
        out
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(drain(3, 40, 7), drain(3, 40, 7));
        assert_ne!(drain(3, 40, 7), drain(3, 40, 8));
    }

    #[test]
    fn output_is_a_valid_multi_trial_trace() {
        let bytes = drain(2, 25, 7);
        assert!(is_trial_header(
            bytes.split(|&b| b == b'\n').next().unwrap()
        ));
        let mut m = StatsMode::new();
        let rep = run_mode(&bytes[..], 512, TailMode::Strict, &mut m).unwrap();
        assert_eq!(rep.trials, 2);
        assert_eq!(rep.witnesses, 50);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.rows[0].sent, 25);
        assert!(m.rows[0].delivered() > 0);
        assert!(m.rows[0].fates.contains_key("dropped"));
        assert!(m.rows[0].retries > 0, "every 5th message retries");
    }

    #[test]
    fn incremental_reads_match_bulk_reads() {
        let bulk = drain(2, 10, 3);
        let mut tiny = Vec::new();
        let mut src = SynthTrace::new(2, 10, 3);
        let mut one = [0u8; 1];
        loop {
            match src.read(&mut one).unwrap() {
                0 => break,
                n => tiny.extend_from_slice(&one[..n]),
            }
        }
        assert_eq!(tiny, bulk);
    }
}
