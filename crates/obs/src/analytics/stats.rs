//! `stats` mode: per-trial / per-fate / per-rule aggregation with
//! power-of-two-bucket percentiles.
//!
//! Holds one [`TrialStats`] row per trial header plus a corpus-wide
//! rule tally — O(trials + rules), never O(trace). All rendering is
//! integer-only (ratios via [`ratio4`](super::ratio4)), so output is
//! byte-identical across platforms and input chunkings.

use std::collections::BTreeMap;

use super::{pct1, ratio4, Mode, StreamReport, TrialHeader};
use crate::hist::PowHistogram;
use crate::json::Json;
use crate::witness::RouteWitness;

/// Canonical fate column order (the conservation-counter order);
/// unknown fates follow, sorted.
const FATE_ORDER: [&str; 10] = [
    "delivered",
    "looped",
    "errored",
    "exhausted",
    "dropped",
    "timed_out",
    "gave_up",
    "rejected",
    "shed",
    "in_flight",
];

/// Aggregates for one trial section.
#[derive(Clone, Debug, Default)]
pub struct TrialStats {
    /// Router name from the trial header (`-` for headerless traces).
    pub router: String,
    /// Locality parameter from the trial header.
    pub k: u32,
    /// Messages sent (witnesses folded).
    pub sent: u64,
    /// Source-side retries summed over all messages.
    pub retries: u64,
    /// Terminal fate tallies (`in_flight` for unterminated messages).
    pub fates: BTreeMap<String, u64>,
    /// Final-attempt route lengths of delivered messages.
    pub hops: PowHistogram,
    /// End-to-end latencies (ticks) of delivered messages.
    pub latency: PowHistogram,
}

impl TrialStats {
    /// Delivered-message count.
    pub fn delivered(&self) -> u64 {
        self.fates.get("delivered").copied().unwrap_or(0)
    }
}

/// Streaming per-trial statistics.
#[derive(Debug, Default)]
pub struct StatsMode {
    pub(crate) rows: Vec<TrialStats>,
    pub(crate) rules: BTreeMap<String, u64>,
}

impl StatsMode {
    /// Creates an empty stats aggregator.
    pub fn new() -> Self {
        StatsMode::default()
    }

    /// Fate columns present in this corpus: canonical order first,
    /// then unknown tags sorted.
    fn fate_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = FATE_ORDER
            .iter()
            .filter(|f| self.rows.iter().any(|r| r.fates.contains_key(**f)))
            .map(|f| f.to_string())
            .collect();
        let mut extra: Vec<String> = self
            .rows
            .iter()
            .flat_map(|r| r.fates.keys())
            .filter(|f| !FATE_ORDER.contains(&f.as_str()))
            .cloned()
            .collect();
        extra.sort();
        extra.dedup();
        cols.extend(extra);
        cols
    }

    /// Compares two stats runs row-by-row (matched by trial index) as
    /// an EXPERIMENTS.md-ready markdown table. Used by
    /// `tracecat diff --stats` for cross-seed / cross-config reports.
    pub fn comparison(&self, other: &StatsMode, label_a: &str, label_b: &str) -> String {
        let mut out = String::new();
        out.push_str("# tracecat diff --stats\n\n");
        out.push_str(&format!("A = {label_a}\nB = {label_b}\n\n"));
        out.push_str(
            "| trial | router | k | sent A | sent B | delivered A | delivered B | \
             Δdelivered | retries A | retries B | lat p95 A | lat p95 B |\n",
        );
        out.push_str(
            "|------:|:-------|--:|-------:|-------:|------------:|------------:|\
             -----------:|----------:|----------:|----------:|----------:|\n",
        );
        let n = self.rows.len().max(other.rows.len());
        let empty = TrialStats::default();
        for i in 0..n {
            let a = self.rows.get(i).unwrap_or(&empty);
            let b = other.rows.get(i).unwrap_or(&empty);
            let (router, k) = if self.rows.get(i).is_some() {
                (a.router.as_str(), a.k)
            } else {
                (b.router.as_str(), b.k)
            };
            let delta = b.delivered() as i64 - a.delivered() as i64;
            out.push_str(&format!(
                "| {i} | {router} | {k} | {} | {} | {} | {} | {delta:+} | {} | {} | {} | {} |\n",
                a.sent,
                b.sent,
                a.delivered(),
                b.delivered(),
                a.retries,
                b.retries,
                opt(a.latency.p95()),
                opt(b.latency.p95()),
            ));
            if self.rows.get(i).is_some()
                && other.rows.get(i).is_some()
                && (a.router != b.router || a.k != b.k)
            {
                out.push_str(&format!(
                    "| | ⚠ trial {i} mismatch: A is {}/k={}, B is {}/k={} | | | | | | | | | | |\n",
                    a.router, a.k, b.router, b.k
                ));
            }
        }
        out
    }
}

/// Renders `None` as `-` for table cells.
fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}

impl Mode for StatsMode {
    fn on_trial(&mut self, trial: &TrialHeader) {
        self.rows.push(TrialStats {
            router: trial.router.clone(),
            k: trial.k,
            ..TrialStats::default()
        });
    }

    fn on_event(&mut self, _line: usize, ev: &Json) {
        if ev.str_of("ev") == Some("hop") {
            let rule = ev.str_of("rule").unwrap_or("?");
            *self.rules.entry(rule.to_string()).or_insert(0) += 1;
        }
    }

    fn on_witness(&mut self, w: &RouteWitness) {
        let delivered = w.delivered();
        let route_len = w.final_attempt().len() as u64;
        let latency = w.latency();
        let fate = w.fate.clone().unwrap_or_else(|| "in_flight".to_string());
        if self.rows.is_empty() {
            self.rows.push(TrialStats {
                router: "-".to_string(),
                ..TrialStats::default()
            });
        }
        let Some(row) = self.rows.last_mut() else {
            return;
        };
        row.sent += 1;
        row.retries += u64::from(w.retries);
        *row.fates.entry(fate).or_insert(0) += 1;
        if delivered {
            row.hops.observe(route_len);
            if let Some(lat) = latency {
                row.latency.observe(lat);
            }
        }
    }

    fn render(&self, report: &StreamReport) -> String {
        let mut out = String::new();
        out.push_str("# tracecat stats\n\n## trials\n\n");
        out.push_str(
            "| trial | router | k | sent | delivered | ratio | retries | \
             hops p50/p95/max | lat p50/p95/max |\n",
        );
        out.push_str(
            "|------:|:-------|--:|-----:|----------:|------:|--------:|\
             :-----------------|:----------------|\n",
        );
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "| {i} | {} | {} | {} | {} | {} | {} | {}/{}/{} | {}/{}/{} |\n",
                r.router,
                r.k,
                r.sent,
                r.delivered(),
                ratio4(r.delivered(), r.sent),
                r.retries,
                opt(r.hops.p50()),
                opt(r.hops.p95()),
                opt(r.hops.max()),
                opt(r.latency.p50()),
                opt(r.latency.p95()),
                opt(r.latency.max()),
            ));
        }

        let cols = self.fate_columns();
        if !cols.is_empty() {
            out.push_str("\n## fates\n\n| trial | router |");
            for c in &cols {
                out.push_str(&format!(" {c} |"));
            }
            out.push_str("\n|------:|:-------|");
            for _ in &cols {
                out.push_str("--:|");
            }
            out.push('\n');
            for (i, r) in self.rows.iter().enumerate() {
                out.push_str(&format!("| {i} | {} |", r.router));
                for c in &cols {
                    out.push_str(&format!(" {} |", r.fates.get(c).copied().unwrap_or(0)));
                }
                out.push('\n');
            }
        }

        if !self.rules.is_empty() {
            let total: u64 = self.rules.values().sum();
            out.push_str("\n## rules\n\n| rule | hops | share |\n|:-----|-----:|------:|\n");
            for (rule, n) in &self.rules {
                out.push_str(&format!("| {rule} | {n} | {} |\n", pct1(*n, total)));
            }
        }

        out.push_str(&format!(
            "\nstream: {} events, {} trials, {} witnesses, {} bytes{}\n",
            report.events,
            report.trials,
            report.witnesses,
            report.bytes,
            if report.truncated_tail {
                " (truncated tail dropped)"
            } else {
                ""
            },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::{run_mode, TailMode};

    const TRACE: &str = concat!(
        "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-1\",\"k\":12}\n",
        "{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":4}\n",
        "{\"seq\":1,\"tick\":0,\"ev\":\"hop\",\"msg\":0,\"att\":0,\"node\":1,\"to\":4,\"rule\":\"greedy\",\"prov\":0}\n",
        "{\"seq\":2,\"tick\":1,\"ev\":\"deliver\",\"msg\":0,\"node\":4,\"hops\":1}\n",
        "{\"seq\":3,\"tick\":1,\"ev\":\"fate\",\"msg\":0,\"fate\":\"delivered\"}\n",
        "{\"seq\":4,\"tick\":2,\"ev\":\"send\",\"msg\":1,\"s\":2,\"t\":9}\n",
        "{\"seq\":5,\"tick\":3,\"ev\":\"fate\",\"msg\":1,\"fate\":\"dropped\",\"why\":\"loss\"}\n",
    );

    fn run(text: &str) -> (StatsMode, StreamReport) {
        let mut m = StatsMode::new();
        let r = run_mode(text.as_bytes(), 32, TailMode::Strict, &mut m).unwrap();
        (m, r)
    }

    #[test]
    fn aggregates_per_trial_fates_and_rules() {
        let (m, _) = run(TRACE);
        assert_eq!(m.rows.len(), 1);
        let r = &m.rows[0];
        assert_eq!((r.router.as_str(), r.k, r.sent), ("algorithm-1", 12, 2));
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.fates.get("dropped"), Some(&1));
        assert_eq!(r.hops.count(), 1);
        assert_eq!(r.latency.max(), Some(1));
        assert_eq!(m.rules.get("greedy"), Some(&1));
    }

    #[test]
    fn render_is_integer_only_markdown() {
        let (m, rep) = run(TRACE);
        let text = m.render(&rep);
        assert!(
            text.contains("| 0 | algorithm-1 | 12 | 2 | 1 | 0.5000 | 0 |"),
            "{text}"
        );
        assert!(text.contains("## fates"), "{text}");
        assert!(text.contains("| greedy | 1 | 100.0% |"), "{text}");
        assert!(
            text.contains("stream: 7 events, 1 trials, 2 witnesses,"),
            "{text}"
        );
    }

    #[test]
    fn headerless_trace_gets_a_synthetic_row() {
        let text = "{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":2}\n";
        let (m, _) = run(text);
        assert_eq!(m.rows.len(), 1);
        assert_eq!(m.rows[0].router, "-");
        assert_eq!(m.rows[0].fates.get("in_flight"), Some(&1));
    }

    #[test]
    fn comparison_emits_signed_deltas() {
        let (a, _) = run(TRACE);
        let (b, _) = run(TRACE);
        let table = a.comparison(&b, "seed 7", "seed 8");
        assert!(
            table.contains("| 0 | algorithm-1 | 12 | 2 | 2 | 1 | 1 | +0 |"),
            "{table}"
        );
    }
}
