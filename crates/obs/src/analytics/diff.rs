//! `diff` mode: byte-level first-divergence and structured cross-run
//! comparison.
//!
//! Traces are pure functions of the seed, so two runs of the same
//! configuration must be byte-identical — [`first_divergence`] streams
//! both inputs line-by-line through fixed buffers and reports the
//! first differing line (or certifies zero divergence) without ever
//! holding more than two lines in memory. For *intentionally*
//! different runs (other seed, other config), byte-diffing is useless;
//! [`stats_diff`] instead aggregates both streams with
//! [`StatsMode`](super::stats::StatsMode) and renders a per-trial
//! comparison table ready for EXPERIMENTS.md.

use std::io::Read;

use super::reader::LineReader;
use super::stats::StatsMode;
use super::{run_mode, StreamError, TailMode};

/// Result of a byte-level trace comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffOutcome {
    /// The streams are byte-identical.
    Identical {
        /// Non-blank lines compared.
        events: u64,
        /// Total bytes per stream.
        bytes: u64,
    },
    /// The streams differ, first at this line.
    Diverged {
        /// 1-based line number of the first divergence.
        line: usize,
        /// That line in stream A (`<end of trace>` if A ended).
        a: String,
        /// That line in stream B (`<end of trace>` if B ended).
        b: String,
    },
}

fn render_side(l: Option<&[u8]>) -> String {
    match l {
        Some(bytes) => String::from_utf8_lossy(bytes).into_owned(),
        None => "<end of trace>".to_string(),
    }
}

/// Streams two traces and reports the first diverging line, or
/// certifies zero divergence. A line is compared including its
/// termination state, so a torn tail on one side diverges from a
/// terminated line on the other.
///
/// # Errors
///
/// Reader io failures from either stream (line numbers are per-side).
pub fn first_divergence<A: Read, B: Read>(
    a: A,
    b: B,
    buf_bytes: usize,
) -> Result<DiffOutcome, StreamError> {
    let mut ra = LineReader::new(a, buf_bytes);
    let mut rb = LineReader::new(b, buf_bytes);
    let mut events = 0u64;
    let mut bytes = 0u64;
    loop {
        let la = ra.next_line()?;
        let lb = rb.next_line()?;
        match (&la, &lb) {
            (None, None) => return Ok(DiffOutcome::Identical { events, bytes }),
            (Some(x), Some(y)) if x.bytes == y.bytes && x.terminated == y.terminated => {
                if !x.bytes.iter().all(u8::is_ascii_whitespace) {
                    events += 1;
                }
                bytes += x.bytes.len() as u64 + u64::from(x.terminated);
            }
            _ => {
                let line = la
                    .as_ref()
                    .map(|l| l.number)
                    .max(lb.as_ref().map(|l| l.number))
                    .unwrap_or(0);
                return Ok(DiffOutcome::Diverged {
                    line,
                    a: render_side(la.as_ref().map(|l| l.bytes)),
                    b: render_side(lb.as_ref().map(|l| l.bytes)),
                });
            }
        }
    }
}

/// Aggregates both streams with [`StatsMode`] and renders the
/// structured per-trial comparison table (`tracecat diff --stats`).
///
/// # Errors
///
/// The first [`StreamError`] from either stream.
pub fn stats_diff<A: Read, B: Read>(
    a: A,
    b: B,
    buf_bytes: usize,
    tail: TailMode,
    label_a: &str,
    label_b: &str,
) -> Result<String, StreamError> {
    let mut sa = StatsMode::new();
    run_mode(a, buf_bytes, tail, &mut sa)?;
    let mut sb = StatsMode::new();
    run_mode(b, buf_bytes, tail, &mut sb)?;
    Ok(sa.comparison(&sb, label_a, label_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_count_events_and_bytes() {
        let t =
            "{\"ev\":\"send\",\"msg\":0}\n\n{\"ev\":\"fate\",\"msg\":0,\"fate\":\"delivered\"}\n";
        let got = first_divergence(t.as_bytes(), t.as_bytes(), 8).unwrap();
        assert_eq!(
            got,
            DiffOutcome::Identical {
                events: 2,
                bytes: t.len() as u64
            }
        );
    }

    #[test]
    fn reports_the_first_differing_line() {
        let a = "same\nalpha\nrest\n";
        let b = "same\nbeta\nrest\n";
        let got = first_divergence(a.as_bytes(), b.as_bytes(), 4).unwrap();
        assert_eq!(
            got,
            DiffOutcome::Diverged {
                line: 2,
                a: "alpha".to_string(),
                b: "beta".to_string()
            }
        );
    }

    #[test]
    fn a_prefix_diverges_at_end_of_trace() {
        let a = "one\n";
        let b = "one\ntwo\n";
        let got = first_divergence(a.as_bytes(), b.as_bytes(), 4).unwrap();
        assert_eq!(
            got,
            DiffOutcome::Diverged {
                line: 2,
                a: "<end of trace>".to_string(),
                b: "two".to_string()
            }
        );
    }

    #[test]
    fn a_torn_tail_diverges_from_a_terminated_one() {
        let a = "one\ntwo\n";
        let b = "one\ntwo";
        let got = first_divergence(a.as_bytes(), b.as_bytes(), 4).unwrap();
        assert!(
            matches!(got, DiffOutcome::Diverged { line: 2, .. }),
            "{got:?}"
        );
    }

    #[test]
    fn stats_diff_renders_a_comparison_table() {
        let a = concat!(
            "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-1\",\"k\":12}\n",
            "{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":2}\n",
            "{\"tick\":1,\"ev\":\"fate\",\"msg\":0,\"fate\":\"delivered\"}\n",
        );
        let b = concat!(
            "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-1\",\"k\":12}\n",
            "{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":2}\n",
            "{\"tick\":1,\"ev\":\"fate\",\"msg\":0,\"fate\":\"dropped\",\"why\":\"loss\"}\n",
        );
        let table = stats_diff(
            a.as_bytes(),
            b.as_bytes(),
            16,
            TailMode::Strict,
            "seed 7",
            "seed 8",
        )
        .unwrap();
        assert!(table.contains("A = seed 7"), "{table}");
        assert!(
            table.contains("| 0 | algorithm-1 | 12 | 1 | 1 | 1 | 0 | -1 |"),
            "{table}"
        );
    }
}
