//! Streaming trace analytics: bounded-memory analysis of JSONL traces.
//!
//! At the scale PR 9 unlocked (n = 10⁵–10⁶ trials), traces become
//! multi-GB corpora that can no longer be slurped into memory the way
//! [`parse_trace`](crate::parse_trace) does. This module is the
//! streaming counterpart: a chunked line reader with a fixed-size
//! buffer ([`reader::LineReader`]), an incremental per-trial witness
//! fold ([`fold::WitnessFold`]), and a pluggable [`Mode`] trait driven
//! by [`run_mode`], which parses each line exactly once and hands
//! events and completed witnesses to the mode as they stream past.
//!
//! The memory contract every mode obeys: RSS is bounded by
//! O(live messages + aggregate state), never O(trace size), and the
//! rendered output is byte-identical whether the corpus is analyzed
//! whole, in chunks of any buffer size, or merged back from per-worker
//! shards (`bin/tracecat` merge) — the chunk-boundary determinism
//! tests pin exactly that.
//!
//! Error reporting follows the contract
//! `graph::io::from_edgelist_reader` established: every failure is
//! typed and carries the 1-based number of the offending line, and io
//! errors are attributed to the line being read when the stream died.
//! [`TailMode`] distinguishes a torn final line (a trace of a killed or
//! still-running run) from mid-file corruption: strict mode rejects it
//! as [`StreamError::TruncatedTail`], lenient mode drops it and flags
//! the report.

use std::io::Read;

use crate::json::{Json, JsonError};
use crate::witness::RouteWitness;

pub mod diff;
pub mod fold;
pub mod imperiled;
pub mod loops;
pub mod merge;
pub mod reader;
pub mod stats;
pub mod summary;
pub mod synth;

pub use fold::WitnessFold;
pub use reader::{Line, LineReader, DEFAULT_BUF_BYTES};

/// How the final line of a stream is treated when it has no trailing
/// newline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailMode {
    /// A torn final line is a [`StreamError::TruncatedTail`] — the
    /// right default for verify gates, where a trace must be complete.
    Strict,
    /// A torn final line is silently dropped and flagged in
    /// [`StreamReport::truncated_tail`] — for analyzing the trace of a
    /// run that is still in progress (or was killed mid-write).
    Lenient,
}

/// A stream-analysis failure, with the 1-based line it is attributed
/// to.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed while line `line` was being read.
    Io {
        /// 1-based number of the line being read when the stream died.
        line: usize,
        /// The underlying io error.
        err: std::io::Error,
    },
    /// The line is not valid UTF-8.
    Utf8 {
        /// 1-based line number.
        line: usize,
    },
    /// The line is not a valid JSON document.
    Json {
        /// 1-based line number.
        line: usize,
        /// The JSON-level failure (with its byte offset in the line).
        err: JsonError,
    },
    /// Strict tail mode: the final line has no trailing newline.
    TruncatedTail {
        /// 1-based line number of the torn final line.
        line: usize,
    },
    /// The stream does not have the expected trial-block shape (e.g.
    /// `merge` fed a file that does not start with a trial header).
    Shape {
        /// 1-based line number.
        line: usize,
        /// What was expected.
        what: &'static str,
    },
}

impl StreamError {
    /// The 1-based line number the error is attributed to.
    pub fn line(&self) -> usize {
        match self {
            StreamError::Io { line, .. }
            | StreamError::Utf8 { line }
            | StreamError::Json { line, .. }
            | StreamError::TruncatedTail { line }
            | StreamError::Shape { line, .. } => *line,
        }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io { line, err } => write!(f, "line {line}: read error: {err}"),
            StreamError::Utf8 { line } => write!(f, "line {line}: not valid UTF-8"),
            StreamError::Json { line, err } => write!(f, "line {line}: {err}"),
            StreamError::TruncatedTail { line } => write!(
                f,
                "line {line}: truncated tail (no trailing newline; use lenient \
                 mode for in-progress traces)"
            ),
            StreamError::Shape { line, what } => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io { err, .. } => Some(err),
            StreamError::Json { err, .. } => Some(err),
            _ => None,
        }
    }
}

/// The `{"ev":"trial",...}` header opening one trial's section of a
/// multi-trial trace (written by `bin/chaos` between per-trial
/// recorder spans).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialHeader {
    /// 0-based position of the trial in the corpus.
    pub index: usize,
    /// Router name of the trial.
    pub router: String,
    /// Locality parameter of the trial.
    pub k: u32,
}

/// What one [`run_mode`] pass consumed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Parsed (non-blank) JSON lines.
    pub events: u64,
    /// Trial headers seen.
    pub trials: u64,
    /// Route witnesses folded (terminal fates plus end-of-stream
    /// in-flight messages).
    pub witnesses: u64,
    /// Bytes consumed, including line terminators.
    pub bytes: u64,
    /// Lenient tail mode dropped a torn final line.
    pub truncated_tail: bool,
}

/// A streaming analysis mode: [`run_mode`] feeds it trial headers, raw
/// events, and completed route witnesses in stream order, then asks it
/// to render. Implementations hold O(aggregate) state only — never
/// per-line state — and return structured text instead of printing
/// (lib code is silent; only `bin/tracecat` writes to stdout).
pub trait Mode {
    /// A new trial section begins. Witnesses of the previous trial
    /// still in flight were delivered via [`Mode::on_witness`] just
    /// before this call.
    fn on_trial(&mut self, trial: &TrialHeader) {
        let _ = trial;
    }

    /// One raw parsed event (every non-header line, before witness
    /// folding) with its 1-based line number.
    fn on_event(&mut self, line: usize, ev: &Json) {
        let _ = (line, ev);
    }

    /// A message's journey completed: its terminal `fate` arrived, or
    /// the trial/stream ended with it in flight (`fate == None`).
    fn on_witness(&mut self, w: &RouteWitness) {
        let _ = w;
    }

    /// Renders the final report after the stream is exhausted.
    fn render(&self, report: &StreamReport) -> String;
}

/// Drives one mode over a JSONL trace stream: reads chunked lines
/// through a fixed `buf_bytes` buffer, parses each exactly once, folds
/// witnesses incrementally, and notifies the mode in stream order.
/// Memory use is the buffer, the carry for one straddling line, the
/// fold's live messages, and the mode's aggregates — independent of
/// trace size.
///
/// # Errors
///
/// Typed, line-numbered [`StreamError`]s: io failures, invalid UTF-8,
/// malformed JSON, and (strict mode) a torn final line.
pub fn run_mode<R: Read, M: Mode + ?Sized>(
    src: R,
    buf_bytes: usize,
    tail: TailMode,
    mode: &mut M,
) -> Result<StreamReport, StreamError> {
    let mut rd = LineReader::new(src, buf_bytes);
    let mut fold = WitnessFold::new();
    let mut report = StreamReport::default();
    let mut trial_index = 0usize;
    while let Some(line) = rd.next_line()? {
        let number = line.number;
        let blank = line.bytes.iter().all(u8::is_ascii_whitespace);
        if !line.terminated {
            if blank {
                break;
            }
            match tail {
                TailMode::Strict => return Err(StreamError::TruncatedTail { line: number }),
                TailMode::Lenient => {
                    report.truncated_tail = true;
                    break;
                }
            }
        }
        report.bytes += line.bytes.len() as u64 + 1;
        if blank {
            continue;
        }
        let text =
            std::str::from_utf8(line.bytes).map_err(|_| StreamError::Utf8 { line: number })?;
        let ev = Json::parse(text).map_err(|err| StreamError::Json { line: number, err })?;
        report.events += 1;
        if ev.str_of("ev") == Some("trial") {
            for w in fold.drain() {
                report.witnesses += 1;
                mode.on_witness(&w);
            }
            let header = TrialHeader {
                index: trial_index,
                router: ev.str_of("router").unwrap_or("?").to_string(),
                k: ev.u64_of("k").unwrap_or(0) as u32,
            };
            trial_index += 1;
            report.trials += 1;
            mode.on_trial(&header);
            continue;
        }
        mode.on_event(number, &ev);
        if let Some(w) = fold.feed(&ev) {
            report.witnesses += 1;
            mode.on_witness(&w);
        }
    }
    for w in fold.drain() {
        report.witnesses += 1;
        mode.on_witness(&w);
    }
    Ok(report)
}

/// Fixed-point `num/den` with four fractional digits, in integer
/// arithmetic only (float formatting is banned on deterministic output
/// paths). `den == 0` renders as `-`.
pub fn ratio4(num: u64, den: u64) -> String {
    if den == 0 {
        return "-".to_string();
    }
    let scaled = (num.saturating_mul(10_000) + den / 2) / den;
    format!("{}.{:04}", scaled / 10_000, scaled % 10_000)
}

/// Integer-only percentage with one fractional digit (`42.3%`).
/// `den == 0` renders as `-`.
pub fn pct1(num: u64, den: u64) -> String {
    if den == 0 {
        return "-".to_string();
    }
    let scaled = (num.saturating_mul(1000) + den / 2) / den;
    format!("{}.{}%", scaled / 10, scaled % 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mode that records the callback sequence.
    #[derive(Default)]
    struct Probe {
        trials: Vec<(usize, String, u32)>,
        events: usize,
        witnesses: Vec<(u64, Option<String>)>,
    }

    impl Mode for Probe {
        fn on_trial(&mut self, t: &TrialHeader) {
            self.trials.push((t.index, t.router.clone(), t.k));
        }
        fn on_event(&mut self, _line: usize, _ev: &Json) {
            self.events += 1;
        }
        fn on_witness(&mut self, w: &RouteWitness) {
            self.witnesses.push((w.msg, w.fate.clone()));
        }
        fn render(&self, _report: &StreamReport) -> String {
            String::new()
        }
    }

    const TRACE: &str = concat!(
        "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-1\",\"k\":12}\n",
        "{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":3}\n",
        "{\"seq\":1,\"tick\":1,\"ev\":\"fate\",\"msg\":0,\"fate\":\"delivered\"}\n",
        "{\"seq\":0,\"tick\":0,\"ev\":\"trial\",\"router\":\"algorithm-3\",\"k\":24}\n",
        "{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":2,\"t\":4}\n",
    );

    #[test]
    fn driver_sequences_trials_events_and_witnesses() {
        let mut p = Probe::default();
        let r = run_mode(TRACE.as_bytes(), 16, TailMode::Strict, &mut p).unwrap();
        assert_eq!(r.events, 5);
        assert_eq!(r.trials, 2);
        assert_eq!(r.witnesses, 2);
        assert_eq!(r.bytes, TRACE.len() as u64);
        assert!(!r.truncated_tail);
        assert_eq!(
            p.trials,
            vec![
                (0, "algorithm-1".to_string(), 12),
                (1, "algorithm-3".to_string(), 24)
            ]
        );
        // Two non-header events parsed, one delivered witness at its
        // fate, one in-flight witness drained at end of stream.
        assert_eq!(p.events, 3);
        assert_eq!(
            p.witnesses,
            vec![(0, Some("delivered".to_string())), (0, None)]
        );
    }

    #[test]
    fn strict_mode_rejects_a_torn_tail() {
        let torn = &TRACE[..TRACE.len() - 1];
        let mut p = Probe::default();
        let err = run_mode(torn.as_bytes(), 16, TailMode::Strict, &mut p).unwrap_err();
        assert!(
            matches!(err, StreamError::TruncatedTail { line: 5 }),
            "{err}"
        );
    }

    #[test]
    fn lenient_mode_drops_and_flags_a_torn_tail() {
        let torn = &TRACE[..TRACE.len() - 1];
        let mut p = Probe::default();
        let r = run_mode(torn.as_bytes(), 16, TailMode::Lenient, &mut p).unwrap();
        assert!(r.truncated_tail);
        // The torn final send never reached the fold.
        assert_eq!(r.events, 4);
        assert_eq!(p.witnesses.len(), 1);
    }

    #[test]
    fn json_errors_carry_the_line_number() {
        let text = "{\"ev\":\"send\",\"msg\":0}\nnot json\n";
        let mut p = Probe::default();
        let err = run_mode(text.as_bytes(), 8, TailMode::Strict, &mut p).unwrap_err();
        match err {
            StreamError::Json { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn utf8_errors_carry_the_line_number() {
        let bytes: &[u8] = b"{\"ev\":\"send\",\"msg\":0}\n\xff\xfe\n";
        let mut p = Probe::default();
        let err = run_mode(bytes, 8, TailMode::Strict, &mut p).unwrap_err();
        match err {
            StreamError::Utf8 { line } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn blank_lines_and_newline_terminated_tails_are_fine() {
        let text = "\n{\"ev\":\"send\",\"msg\":0}\n\n";
        let mut p = Probe::default();
        let r = run_mode(text.as_bytes(), 4, TailMode::Strict, &mut p).unwrap();
        assert_eq!(r.events, 1);
    }

    #[test]
    fn integer_ratio_formatting() {
        assert_eq!(ratio4(9732, 10_000), "0.9732");
        assert_eq!(ratio4(1, 3), "0.3333");
        assert_eq!(ratio4(2, 2), "1.0000");
        assert_eq!(ratio4(5, 0), "-");
        assert_eq!(pct1(423, 1000), "42.3%");
        assert_eq!(pct1(1, 0), "-");
    }
}
