//! Route witnesses: per-message hop-by-hop journeys reconstructed from
//! a parsed trace.
//!
//! The simulator (at [`Level::Hops`](crate::Level::Hops)) emits, for
//! every message, a `send` event, one `hop` event per forwarding
//! decision (naming the deciding node, the chosen edge, the router
//! rule that fired, the attempt number, and the tick the decider's
//! view was provisioned — the fault context), optional `retry` /
//! `lost` events, a `deliver` event on arrival, and exactly one
//! terminal `fate` event. [`collect_witnesses`] folds that stream back
//! into [`RouteWitness`] values — the unit the simulator's replay
//! checker verifies against the graph (locality: every decision
//! re-derivable from `G_k(u)`; dilation: route length within the
//! router's proven bound) and that `tracecat` ranks and prints.
//!
//! Message ids restart per trial in multi-trial traces (each trial has
//! its own network); the collector therefore treats a fresh `send` for
//! an id as opening a new witness generation rather than an error.

use std::collections::BTreeMap;

use crate::json::{Json, JsonError};

/// One forwarding decision of one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessHop {
    /// Tick the decision was made.
    pub tick: u64,
    /// The deciding node (raw index).
    pub node: u32,
    /// The predecessor the message arrived from (`None` at the
    /// origin).
    pub from: Option<u32>,
    /// The chosen next node.
    pub to: u32,
    /// The router rule that fired (from `decide_explained`).
    pub rule: String,
    /// Source-side attempt this hop belongs to (0 = first).
    pub attempt: u32,
    /// Tick the deciding node's view was last provisioned — the
    /// staleness context under churn.
    pub provisioned_at: u64,
}

/// The reconstructed journey of one message.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RouteWitness {
    /// Message id (unique within one trial's trace span).
    pub msg: u64,
    /// Origin node.
    pub s: u32,
    /// Destination node.
    pub t: u32,
    /// Injection tick.
    pub sent_at: u64,
    /// Every hop, across all attempts, in emission order.
    pub hops: Vec<WitnessHop>,
    /// Source-side retries performed.
    pub retries: u32,
    /// Terminal fate (`delivered`, `looped`, `errored`, `exhausted`,
    /// `dropped`, `timed_out`, `gave_up`), or `None` if the trace
    /// ended with the message in flight.
    pub fate: Option<String>,
    /// Tick of the fate event.
    pub fate_tick: Option<u64>,
    /// Extra fate context (`why` of a drop, `err` of a router error).
    pub fate_detail: Option<String>,
    /// Delivery tick, when delivered.
    pub delivered_at: Option<u64>,
}

impl RouteWitness {
    /// Whether the message arrived.
    pub fn delivered(&self) -> bool {
        self.fate.as_deref() == Some("delivered")
    }

    /// The hops of the final (possibly only) attempt.
    pub fn final_attempt(&self) -> Vec<&WitnessHop> {
        let last = self.hops.iter().map(|h| h.attempt).max().unwrap_or(0);
        self.hops.iter().filter(|h| h.attempt == last).collect()
    }

    /// The node sequence of the final attempt: `s`, then each chosen
    /// next node.
    pub fn route(&self) -> Vec<u32> {
        let mut out = vec![self.s];
        out.extend(self.final_attempt().iter().map(|h| h.to));
        out
    }

    /// End-to-end latency in ticks, when delivered.
    pub fn latency(&self) -> Option<u64> {
        self.delivered_at.map(|d| d.saturating_sub(self.sent_at))
    }
}

/// A trace line that failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-indexed line number.
    pub line: usize,
    /// The JSON-level failure.
    pub err: JsonError,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.err)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace into one [`Json`] value per non-empty line.
///
/// # Errors
///
/// Returns the first malformed line as a [`TraceError`].
pub fn parse_trace(text: &str) -> Result<Vec<Json>, TraceError> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(Json::parse(line).map_err(|err| TraceError { line: idx + 1, err })?);
    }
    Ok(out)
}

/// Builds a fresh witness from a `send` event. Shared by the batch
/// collector below and the streaming `analytics::WitnessFold` so the
/// two folds cannot drift.
pub(crate) fn witness_from_send(ev: &Json, tick: u64, msg: u64) -> RouteWitness {
    RouteWitness {
        msg,
        s: ev.u64_of("s").unwrap_or(0) as u32,
        t: ev.u64_of("t").unwrap_or(0) as u32,
        sent_at: tick,
        ..RouteWitness::default()
    }
}

/// Applies one non-`send` message-scoped event to its open witness.
/// Shared by the batch collector below and the streaming
/// `analytics::WitnessFold`.
pub(crate) fn apply_event(w: &mut RouteWitness, kind: &str, tick: u64, ev: &Json) {
    match kind {
        "hop" => w.hops.push(WitnessHop {
            tick,
            node: ev.u64_of("node").unwrap_or(0) as u32,
            from: ev.u64_of("from").map(|v| v as u32),
            to: ev.u64_of("to").unwrap_or(0) as u32,
            rule: ev.str_of("rule").unwrap_or("?").to_string(),
            attempt: ev.u64_of("att").unwrap_or(0) as u32,
            provisioned_at: ev.u64_of("prov").unwrap_or(0),
        }),
        "retry" => w.retries = ev.u64_of("att").unwrap_or(0) as u32,
        "deliver" => w.delivered_at = Some(tick),
        "fate" => {
            w.fate = ev.str_of("fate").map(str::to_string);
            w.fate_tick = Some(tick);
            w.fate_detail = ev
                .str_of("why")
                .or_else(|| ev.str_of("err"))
                .map(str::to_string);
        }
        _ => {}
    }
}

/// Folds a parsed event stream into route witnesses, in `send` order.
/// Events that are not message-scoped (`fault`, `reprov`, spans,
/// metrics) are ignored; a repeated `send` for an id opens a new
/// witness generation (multi-trial traces reuse ids).
pub fn collect_witnesses(events: &[Json]) -> Vec<RouteWitness> {
    let mut out: Vec<RouteWitness> = Vec::new();
    // msg id -> index in `out` of its open (most recent) witness.
    let mut open: BTreeMap<u64, usize> = BTreeMap::new();
    for ev in events {
        let Some(kind) = ev.str_of("ev") else {
            continue;
        };
        let tick = ev.u64_of("tick").unwrap_or(0);
        let Some(msg) = ev.u64_of("msg") else {
            continue;
        };
        if kind == "send" {
            open.insert(msg, out.len());
            out.push(witness_from_send(ev, tick, msg));
            continue;
        }
        let Some(w) = open.get(&msg).and_then(|&i| out.get_mut(i)) else {
            continue;
        };
        apply_event(w, kind, tick, ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "\
{\"seq\":0,\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":1,\"t\":4}\n\
{\"seq\":1,\"tick\":0,\"ev\":\"hop\",\"msg\":0,\"att\":0,\"node\":1,\"to\":2,\"rule\":\"greedy\",\"prov\":0}\n\
{\"seq\":2,\"tick\":1,\"ev\":\"hop\",\"msg\":0,\"att\":0,\"node\":2,\"from\":1,\"to\":4,\"rule\":\"greedy\",\"prov\":0}\n\
{\"seq\":3,\"tick\":2,\"ev\":\"deliver\",\"msg\":0,\"node\":4,\"hops\":2}\n\
{\"seq\":4,\"tick\":2,\"ev\":\"fate\",\"msg\":0,\"fate\":\"delivered\"}\n";

    #[test]
    fn collects_a_delivered_witness() {
        let events = parse_trace(TRACE).unwrap();
        let ws = collect_witnesses(&events);
        assert_eq!(ws.len(), 1);
        let w = &ws[0];
        assert_eq!((w.s, w.t, w.sent_at), (1, 4, 0));
        assert!(w.delivered());
        assert_eq!(w.route(), vec![1, 2, 4]);
        assert_eq!(w.latency(), Some(2));
        assert_eq!(w.hops[0].from, None);
        assert_eq!(w.hops[1].from, Some(1));
        assert_eq!(w.hops[1].rule, "greedy");
    }

    #[test]
    fn retries_partition_attempts() {
        let text = "\
{\"tick\":0,\"ev\":\"send\",\"msg\":3,\"s\":0,\"t\":2}\n\
{\"tick\":0,\"ev\":\"hop\",\"msg\":3,\"att\":0,\"node\":0,\"to\":1,\"rule\":\"a\",\"prov\":0}\n\
{\"tick\":9,\"ev\":\"retry\",\"msg\":3,\"att\":1}\n\
{\"tick\":9,\"ev\":\"hop\",\"msg\":3,\"att\":1,\"node\":0,\"to\":2,\"rule\":\"b\",\"prov\":0}\n\
{\"tick\":10,\"ev\":\"fate\",\"msg\":3,\"fate\":\"delivered\"}\n";
        let ws = collect_witnesses(&parse_trace(text).unwrap());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].retries, 1);
        assert_eq!(ws[0].final_attempt().len(), 1);
        assert_eq!(ws[0].route(), vec![0, 2]);
    }

    #[test]
    fn repeated_send_opens_a_new_generation() {
        let text = "\
{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":0,\"t\":1}\n\
{\"tick\":1,\"ev\":\"fate\",\"msg\":0,\"fate\":\"dropped\",\"why\":\"loss\"}\n\
{\"tick\":0,\"ev\":\"send\",\"msg\":0,\"s\":5,\"t\":6}\n";
        let ws = collect_witnesses(&parse_trace(text).unwrap());
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].fate.as_deref(), Some("dropped"));
        assert_eq!(ws[0].fate_detail.as_deref(), Some("loss"));
        assert_eq!(ws[1].s, 5);
        assert_eq!(ws[1].fate, None, "second generation still in flight");
    }

    #[test]
    fn parse_trace_reports_the_offending_line() {
        let text = "{\"ev\":\"send\"}\n\nnot json\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(err.line, 3);
    }
}
