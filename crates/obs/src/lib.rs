//! # locality-obs
//!
//! Zero-dependency, deterministic observability for the k-local
//! routing stack.
//!
//! The simulator and benchmark harness need a forensic record of what
//! happened inside a run — which hops, which ticks, which cache — but
//! anything they record must obey the same determinism contract as the
//! simulator itself: a trace is a pure function of the seed, byte for
//! byte, at any worker-thread count. This crate is the shared
//! substrate that makes that possible:
//!
//! * [`Recorder`]: a compile-time-feature-gated (`record`, on by
//!   default) and runtime-switchable event sink writing structured
//!   JSONL into an in-memory buffer. Events are stamped with a
//!   monotone sequence number and the **simulation tick** — never a
//!   wall clock, which the `locality-lint` R2 rule bans from this
//!   crate at the source level.
//! * [`Metrics`]: a registry of named counters, gauges, and
//!   [`PowHistogram`]s, dumped as events in sorted (deterministic)
//!   order.
//! * [`PowHistogram`]: a fixed-size power-of-two-bucket histogram with
//!   integer-only quantiles (p50/p95/max), used both inside traces and
//!   by `NetworkMetrics` for hop distributions.
//! * [`json`]: a hand-rolled escaping JSONL writer and a minimal
//!   recursive-descent parser, so reading a trace back needs no
//!   third-party crates either.
//! * [`witness`]: the route-witness schema — per-message hop-by-hop
//!   journeys reconstructed from a parsed trace, which the simulator's
//!   replay checker verifies against the graph (locality, dilation,
//!   conservation).
//! * [`analytics`]: bounded-memory streaming analysis of multi-GB
//!   trace corpora — a chunked line reader, an incremental witness
//!   fold, the pluggable [`analytics::Mode`] trait behind
//!   `bin/tracecat` (summary / stats / loops / imperiled), and
//!   trial-block stream surgery (merge / split / chunk / diff).
//!
//! The crate sits below `locality-graph` in the dependency order, so
//! node identifiers here are raw `u32` indices; interpreting them
//! against a concrete [`Graph`](https://docs.rs) happens upstream in
//! `locality-sim`.
//!
//! # Example
//!
//! ```
//! use locality_obs::{Level, Recorder};
//!
//! let mut rec = Recorder::new(Level::Hops);
//! if let Some(e) = rec.event(Level::Hops, 3, "hop") {
//!     e.u64("msg", 0).u64("node", 5).u64("to", 9).str("rule", "greedy").finish();
//! }
//! let line = String::from_utf8(rec.into_bytes()).unwrap();
//! assert_eq!(
//!     line,
//!     "{\"seq\":0,\"tick\":3,\"ev\":\"hop\",\"msg\":0,\"node\":5,\"to\":9,\"rule\":\"greedy\"}\n"
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analytics;
pub mod hist;
pub mod json;
pub mod names;
pub mod record;
pub mod registry;
pub mod witness;

pub use analytics::{run_mode, Mode, StreamError, StreamReport, TailMode};
pub use hist::PowHistogram;
pub use json::{Json, JsonError};
pub use record::{Event, Level, Recorder};
pub use registry::Metrics;
pub use witness::{collect_witnesses, parse_trace, RouteWitness, TraceError, WitnessHop};
