//! Canonical metric names shared across the stack.
//!
//! The simulator emits these into its end-of-run registry flush and
//! trace tooling greps for them, so the strings live here — below both
//! in the dependency order — to keep producers and consumers from
//! drifting. Only names consumed by more than one crate belong here;
//! purely local counters stay as string literals at their single use
//! site.

/// Gauge: views served by decoding a precomputed oracle artifact
/// (emitted only on artifact-backed runs).
pub const ORACLE_LOADS: &str = "oracle.loads";

/// Gauge: views re-extracted with a k-bounded BFS because a churn wave
/// marked the artifact entry stale (emitted only on artifact-backed
/// runs). Together with [`ORACLE_LOADS`] this is the conservation
/// pair: loads + rebuilds = cold misses, and rebuilds counts exactly
/// the nodes inside some wave's dirty radius.
pub const ORACLE_REBUILDS: &str = "oracle.rebuilds";

/// Gauge: injections refused by the admission controller (emitted only
/// when a non-open admission policy is configured, so open-policy
/// traces stay byte-identical to the pre-admission simulator).
pub const ADMISSION_REJECTED: &str = "admission.rejected";

/// Gauge: admitted messages evicted by the shed-oldest admission
/// policy (emitted only when a non-open policy is configured).
pub const ADMISSION_SHED: &str = "admission.shed";

/// Gauge: highest in-flight arena occupancy the admission controller
/// observed at a decision point — the saturation high-water mark
/// (emitted only when a non-open policy is configured).
pub const ADMISSION_PEAK_LIVE: &str = "admission.peak_live";

/// Gauge: admission decisions taken, i.e. injections attempted while a
/// non-open policy was active (emitted only when one is configured).
pub const ADMISSION_DECISIONS: &str = "admission.decisions";

/// Gauge: number of shards the trial was partitioned across (emitted
/// only when the count exceeds one, so single-shard traces stay
/// byte-identical to the pre-sharding goldens — the same discipline as
/// the oracle and admission gauges above).
pub const SHARD_COUNT: &str = "shard.count";

/// Gauge: the largest per-shard wheel-occupancy high-water mark —
/// `max` over shards of the peak number of occupied arrival-wheel
/// slots, sampled at each tick barrier (emitted only when the shard
/// count exceeds one). Per-shard detail is available programmatically
/// via the simulator's `shard_stats`.
pub const SHARD_WHEEL_OCCUPIED_HW: &str = "shard.wheel_occupied_hw";

/// Gauge: the largest per-shard outbox-depth high-water mark — `max`
/// over shards of the peak number of cross-shard arrivals staged into
/// one shard within a single tick (emitted only when the shard count
/// exceeds one).
pub const SHARD_OUTBOX_DEPTH_HW: &str = "shard.outbox_depth_hw";

/// Gauge: total cross-shard crossings — transmissions whose sending
/// and receiving nodes live in different shards (emitted only when the
/// shard count exceeds one).
pub const SHARD_CROSSINGS: &str = "shard.crossings";
