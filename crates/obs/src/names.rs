//! Canonical metric names shared across the stack.
//!
//! The simulator emits these into its end-of-run registry flush and
//! trace tooling greps for them, so the strings live here — below both
//! in the dependency order — to keep producers and consumers from
//! drifting. Only names consumed by more than one crate belong here;
//! purely local counters stay as string literals at their single use
//! site.

/// Gauge: views served by decoding a precomputed oracle artifact
/// (emitted only on artifact-backed runs).
pub const ORACLE_LOADS: &str = "oracle.loads";

/// Gauge: views re-extracted with a k-bounded BFS because a churn wave
/// marked the artifact entry stale (emitted only on artifact-backed
/// runs). Together with [`ORACLE_LOADS`] this is the conservation
/// pair: loads + rebuilds = cold misses, and rebuilds counts exactly
/// the nodes inside some wave's dirty radius.
pub const ORACLE_REBUILDS: &str = "oracle.rebuilds";

/// Gauge: injections refused by the admission controller (emitted only
/// when a non-open admission policy is configured, so open-policy
/// traces stay byte-identical to the pre-admission simulator).
pub const ADMISSION_REJECTED: &str = "admission.rejected";

/// Gauge: admitted messages evicted by the shed-oldest admission
/// policy (emitted only when a non-open policy is configured).
pub const ADMISSION_SHED: &str = "admission.shed";

/// Gauge: highest in-flight arena occupancy the admission controller
/// observed at a decision point — the saturation high-water mark
/// (emitted only when a non-open policy is configured).
pub const ADMISSION_PEAK_LIVE: &str = "admission.peak_live";

/// Gauge: admission decisions taken, i.e. injections attempted while a
/// non-open policy was active (emitted only when one is configured).
pub const ADMISSION_DECISIONS: &str = "admission.decisions";
