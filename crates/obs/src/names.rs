//! Canonical metric names shared across the stack.
//!
//! The simulator emits these into its end-of-run registry flush and
//! trace tooling greps for them, so the strings live here — below both
//! in the dependency order — to keep producers and consumers from
//! drifting. Only names consumed by more than one crate belong here;
//! purely local counters stay as string literals at their single use
//! site.

/// Gauge: views served by decoding a precomputed oracle artifact
/// (emitted only on artifact-backed runs).
pub const ORACLE_LOADS: &str = "oracle.loads";

/// Gauge: views re-extracted with a k-bounded BFS because a churn wave
/// marked the artifact entry stale (emitted only on artifact-backed
/// runs). Together with [`ORACLE_LOADS`] this is the conservation
/// pair: loads + rebuilds = cold misses, and rebuilds counts exactly
/// the nodes inside some wave's dirty radius.
pub const ORACLE_REBUILDS: &str = "oracle.rebuilds";
