//! Hand-rolled JSON: an escaping writer for deterministic JSONL
//! emission and a minimal recursive-descent parser for reading traces
//! back.
//!
//! Zero dependencies is a design constraint, not an accident: the
//! observability layer must be importable from every crate in the
//! workspace (including the bit-reproducible ones) without dragging in
//! serde's proc-macro stack, and its output must be deterministic down
//! to the byte. The writer therefore emits keys in exactly the order
//! the caller pushes them, formats only integers and escaped strings
//! (no floats on the emission path — float formatting is where
//! cross-platform byte drift creeps in), and appends `\n`-terminated
//! lines to a caller-owned buffer.
//!
//! The parser accepts general JSON (objects, arrays, strings, bools,
//! null, and both integer and float numbers) because `tracecat` also
//! digests the chaos soak's summary JSON, which contains ratios.

use std::fmt;
use std::io::Write as _;

/// Appends the canonical decimal rendering of `v` to `buf`.
#[inline]
pub fn push_u64(buf: &mut Vec<u8>, v: u64) {
    // io::Write on Vec<u8> is infallible.
    let _ = write!(buf, "{v}");
}

/// Appends the canonical decimal rendering of `v` to `buf`.
#[inline]
pub fn push_i64(buf: &mut Vec<u8>, v: i64) {
    let _ = write!(buf, "{v}");
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `buf`.
pub fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.push(b'"');
    for c in s.chars() {
        match c {
            '"' => buf.extend_from_slice(b"\\\""),
            '\\' => buf.extend_from_slice(b"\\\\"),
            '\n' => buf.extend_from_slice(b"\\n"),
            '\r' => buf.extend_from_slice(b"\\r"),
            '\t' => buf.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => {
                let mut tmp = [0u8; 4];
                buf.extend_from_slice(c.encode_utf8(&mut tmp).as_bytes());
            }
        }
    }
    buf.push(b'"');
}

/// A parsed JSON value. Integers that fit `i64` are kept exact in
/// [`Json::Int`]; everything else numeric falls back to [`Json::Num`].
/// Object keys keep their textual order (and duplicates), which makes
/// a reparse of writer output structurally faithful.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fit `i64` exactly.
    Int(i64),
    /// Any other number (floats, and integers beyond `i64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order of appearance.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset of the first
    /// problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(JsonError {
                at: p.at,
                what: "trailing garbage after the document",
            });
        }
        Ok(v)
    }

    /// Member lookup on an object (first match wins); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Shorthand: `self.get(key).and_then(Json::as_u64)`.
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Shorthand: `self.get(key).and_then(Json::as_str)`.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

/// A parse failure at a byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What the parser expected or rejected.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(JsonError { at: self.at, what })
        }
    }

    fn literal(&mut self, lit: &str, what: &'static str) -> Result<(), JsonError> {
        let end = self.at + lit.len();
        if self.bytes.get(self.at..end) == Some(lit.as_bytes()) {
            self.at = end;
            Ok(())
        } else {
            Err(JsonError { at: self.at, what })
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self
                .literal("true", "expected `true`")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected `false`")
                .map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected `null`").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError {
                at: self.at,
                what: "expected a JSON value",
            }),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{', "expected `{`")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => {
                    return Err(JsonError {
                        at: self.at,
                        what: "expected `,` or `}` in object",
                    })
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError {
                        at: self.at,
                        what: "expected `,` or `]` in array",
                    })
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.at += 1;
            }
            if self.at > start {
                let chunk = self
                    .bytes
                    .get(start..self.at)
                    .and_then(|raw| std::str::from_utf8(raw).ok())
                    .ok_or(JsonError {
                        at: start,
                        what: "invalid UTF-8 in string",
                    })?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    self.escape(&mut out)?;
                }
                _ => {
                    return Err(JsonError {
                        at: self.at,
                        what: "unterminated string",
                    })
                }
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = self.peek().ok_or(JsonError {
            at: self.at,
            what: "unterminated escape",
        })?;
        self.at += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let code = self.hex4()?;
                // Surrogate pairs: a leading surrogate must be followed
                // by `\u` + trailing surrogate.
                let c = if (0xD800..0xDC00).contains(&code) {
                    self.literal("\\u", "expected trailing surrogate")?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(JsonError {
                            at: self.at,
                            what: "invalid trailing surrogate",
                        });
                    }
                    let joined = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(joined)
                } else {
                    char::from_u32(code)
                };
                out.push(c.ok_or(JsonError {
                    at: self.at,
                    what: "escape is not a scalar value",
                })?);
            }
            _ => {
                return Err(JsonError {
                    at: self.at.saturating_sub(1),
                    what: "unknown escape",
                })
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|b| (b as char).to_digit(16));
            match d {
                Some(d) => {
                    code = code * 16 + d;
                    self.at += 1;
                }
                None => {
                    return Err(JsonError {
                        at: self.at,
                        what: "expected 4 hex digits",
                    })
                }
            }
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = self
            .bytes
            .get(start..self.at)
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .unwrap_or("");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            what: "malformed number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_formats() {
        let mut buf = Vec::new();
        push_str(&mut buf, "a\"b\\c\nd\u{1}é");
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "\"a\\\"b\\\\c\\nd\\u0001é\""
        );
        let mut buf = Vec::new();
        push_u64(&mut buf, 18446744073709551615);
        push_i64(&mut buf, -42);
        assert_eq!(String::from_utf8(buf).unwrap(), "18446744073709551615-42");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(Json::parse("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = Json::parse(r#"{"a":[1,2,{"b":"x"}],"n":null}"#).unwrap();
        assert_eq!(v.u64_of("n"), None);
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].str_of("b"), Some("x"));
    }

    #[test]
    fn round_trips_writer_output() {
        let mut buf = Vec::new();
        buf.push(b'{');
        push_str(&mut buf, "ev");
        buf.push(b':');
        push_str(&mut buf, "hop\n\"quoted\"");
        buf.extend_from_slice(b",\"n\":");
        push_u64(&mut buf, 9000);
        buf.push(b'}');
        let text = String::from_utf8(buf).unwrap();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.str_of("ev"), Some("hop\n\"quoted\""));
        assert_eq!(v.u64_of("n"), Some(9000));
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = Json::parse(r#""é😀\t""#).unwrap();
        assert_eq!(v, Json::Str("é😀\t".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }
}
