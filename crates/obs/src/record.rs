//! The [`Recorder`]: a feature-gated, runtime-levelled JSONL event
//! sink.
//!
//! Two switches control cost. At compile time, the `record` cargo
//! feature (default on) gates the whole emission path: without it
//! [`Recorder::enabled`] is a constant `false` and every
//! `if let Some(e) = rec.event(..)` in instrumented code is dead code.
//! At runtime, a [`Level`] picks how much a live recorder captures;
//! the hot-path contract is that a disabled recorder costs one branch
//! (callers typically hold `Option<Box<Recorder>>`, making the
//! tracing-off cost a single pointer test — the ≤2% overhead budget
//! `bin/perfsmoke` gates on).
//!
//! Every event line is `{"seq":N,"tick":T,"ev":"kind",...}`: a
//! monotone per-recorder sequence number and the **simulation tick**.
//! There are deliberately no wall-clock timestamps — the trace must be
//! a pure function of the seed (lint rule R2 enforces the absence of
//! clock APIs in this crate at the source level), which is what makes
//! `tracecat diff` meaningful across runs, machines, and thread
//! counts.

use crate::json;
use crate::registry::Metrics;

/// How much a recorder captures, in increasing order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Level {
    /// Record nothing (a no-op recorder).
    #[default]
    Off,
    /// Aggregate metrics only: counters/gauges/histograms, dumped on
    /// [`Recorder::flush_metrics`]; no per-event lines.
    Metrics,
    /// Route witnesses: sends, hops, deliveries, fates, faults — the
    /// events the replay checker and `tracecat` consume — plus
    /// everything `Metrics` captures.
    Hops,
    /// Engine internals on top of `Hops`: losses at draw time,
    /// parking, per-phase tick activity, scheduler samples.
    Debug,
}

impl Level {
    /// Parses a level name as used by `--trace-level`.
    pub fn from_name(name: &str) -> Option<Level> {
        match name {
            "off" => Some(Level::Off),
            "metrics" => Some(Level::Metrics),
            "hops" => Some(Level::Hops),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The canonical name (`off`, `metrics`, `hops`, `debug`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Metrics => "metrics",
            Level::Hops => "hops",
            Level::Debug => "debug",
        }
    }
}

/// An in-memory JSONL event sink with a metrics registry attached.
#[derive(Debug, Default)]
pub struct Recorder {
    level: Level,
    seq: u64,
    buf: Vec<u8>,
    metrics: Metrics,
}

impl Recorder {
    /// A recorder capturing at `level`.
    pub fn new(level: Level) -> Recorder {
        Recorder {
            level,
            ..Recorder::default()
        }
    }

    /// A no-op recorder ([`Level::Off`]): attached but recording
    /// nothing — the configuration the overhead gate measures.
    pub fn off() -> Recorder {
        Recorder::new(Level::Off)
    }

    /// The runtime level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether events at `at` are captured. With the `record` feature
    /// disabled this is a constant `false` and instrumentation
    /// compiles away.
    #[inline]
    pub fn enabled(&self, at: Level) -> bool {
        #[cfg(feature = "record")]
        {
            at != Level::Off && self.level >= at
        }
        #[cfg(not(feature = "record"))]
        {
            let _ = at;
            false
        }
    }

    /// Starts an event line (kind `ev`, stamped with the next sequence
    /// number and `tick`) if `at` is enabled. The returned [`Event`]
    /// must be [`finish`](Event::finish)ed to terminate the line.
    #[inline]
    pub fn event(&mut self, at: Level, tick: u64, ev: &str) -> Option<Event<'_>> {
        if !self.enabled(at) || at == Level::Metrics {
            return None;
        }
        let buf = &mut self.buf;
        buf.extend_from_slice(b"{\"seq\":");
        json::push_u64(buf, self.seq);
        self.seq += 1;
        buf.extend_from_slice(b",\"tick\":");
        json::push_u64(buf, tick);
        buf.extend_from_slice(b",\"ev\":");
        json::push_str(buf, ev);
        Some(Event { buf })
    }

    /// Emits a `span_open` event (at [`Level::Hops`]) labelling a
    /// region of the trace, e.g. one trial of a multi-trial run.
    pub fn span_open(&mut self, tick: u64, name: &str) {
        if let Some(e) = self.event(Level::Hops, tick, "span_open") {
            e.str("name", name).finish();
        }
    }

    /// Emits the matching `span_close` event.
    pub fn span_close(&mut self, tick: u64, name: &str) {
        if let Some(e) = self.event(Level::Hops, tick, "span_close") {
            e.str("name", name).finish();
        }
    }

    /// Adds `by` to counter `name` (when at least [`Level::Metrics`]).
    #[inline]
    pub fn inc(&mut self, name: &'static str, by: u64) {
        if self.enabled(Level::Metrics) {
            self.metrics.inc(name, by);
        }
    }

    /// Records `v` into histogram `name` (when at least
    /// [`Level::Metrics`]).
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        if self.enabled(Level::Metrics) {
            self.metrics.observe(name, v);
        }
    }

    /// Raises gauge `name` to `v` (when at least [`Level::Metrics`]).
    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, v: i64) {
        if self.enabled(Level::Metrics) {
            self.metrics.gauge_max(name, v);
        }
    }

    /// Sets gauge `name` to `v` (when at least [`Level::Metrics`]).
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, v: i64) {
        if self.enabled(Level::Metrics) {
            self.metrics.gauge_set(name, v);
        }
    }

    /// Read access to the aggregated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Dumps the metrics registry into the event stream as `ctr` /
    /// `gauge` / `hist` lines stamped `tick`, then clears it.
    /// Typically called once, after a run finishes.
    pub fn flush_metrics(&mut self, tick: u64) {
        if !self.enabled(Level::Metrics) || self.metrics.is_empty() {
            return;
        }
        let m = std::mem::take(&mut self.metrics);
        m.dump_jsonl(&mut self.buf, &mut self.seq, tick);
    }

    /// The recorded JSONL so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the recorder, returning its JSONL buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Takes the buffered JSONL, leaving the recorder recording (the
    /// sequence counter keeps running, so lines stay globally ordered).
    pub fn take_bytes(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

/// An event line under construction. Field methods chain; call
/// [`finish`](Event::finish) to terminate the line — an unfinished
/// event leaves the buffer mid-line.
#[must_use = "call .finish() to terminate the event line"]
pub struct Event<'a> {
    buf: &'a mut Vec<u8>,
}

impl Event<'_> {
    #[inline]
    fn key(self, key: &str) -> Self {
        self.buf.push(b',');
        json::push_str(self.buf, key);
        self.buf.push(b':');
        self
    }

    /// Adds an unsigned integer field.
    #[inline]
    pub fn u64(self, key: &str, v: u64) -> Self {
        let e = self.key(key);
        json::push_u64(e.buf, v);
        e
    }

    /// Adds a signed integer field.
    #[inline]
    pub fn i64(self, key: &str, v: i64) -> Self {
        let e = self.key(key);
        json::push_i64(e.buf, v);
        e
    }

    /// Adds a string field (escaped).
    #[inline]
    pub fn str(self, key: &str, v: &str) -> Self {
        let e = self.key(key);
        json::push_str(e.buf, v);
        e
    }

    /// Adds a boolean field.
    #[inline]
    pub fn bool(self, key: &str, v: bool) -> Self {
        let e = self.key(key);
        e.buf
            .extend_from_slice(if v { b"true" as &[u8] } else { b"false" });
        e
    }

    /// Adds an unsigned integer field only when present.
    #[inline]
    pub fn opt_u64(self, key: &str, v: Option<u64>) -> Self {
        match v {
            Some(v) => self.u64(key, v),
            None => self,
        }
    }

    /// Adds an array-of-integers field.
    pub fn arr_u64(self, key: &str, vals: impl IntoIterator<Item = u64>) -> Self {
        let e = self.key(key);
        e.buf.push(b'[');
        for (i, v) in vals.into_iter().enumerate() {
            if i > 0 {
                e.buf.push(b',');
            }
            json::push_u64(e.buf, v);
        }
        e.buf.push(b']');
        e
    }

    /// Terminates the line.
    #[inline]
    pub fn finish(self) {
        self.buf.extend_from_slice(b"}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Json;

    #[test]
    fn off_recorder_emits_nothing() {
        let mut rec = Recorder::off();
        assert!(!rec.enabled(Level::Metrics));
        assert!(rec.event(Level::Hops, 0, "hop").is_none());
        rec.inc("c", 1);
        rec.observe("h", 1);
        rec.flush_metrics(0);
        assert!(rec.bytes().is_empty());
        assert!(rec.metrics().is_empty());
    }

    #[cfg(feature = "record")]
    #[test]
    fn levels_are_ordered_and_gated() {
        let rec = Recorder::new(Level::Hops);
        assert!(rec.enabled(Level::Metrics));
        assert!(rec.enabled(Level::Hops));
        assert!(!rec.enabled(Level::Debug));
        // `Off` is never "enabled", even by an Off recorder.
        assert!(!Recorder::off().enabled(Level::Off));
    }

    #[cfg(feature = "record")]
    #[test]
    fn events_are_sequenced_and_parseable() {
        let mut rec = Recorder::new(Level::Debug);
        if let Some(e) = rec.event(Level::Hops, 5, "send") {
            e.u64("msg", 1).bool("ok", true).finish();
        }
        if let Some(e) = rec.event(Level::Debug, 6, "park") {
            e.i64("d", -2)
                .opt_u64("skip", None)
                .opt_u64("have", Some(3))
                .arr_u64("path", [1, 2, 3])
                .finish();
        }
        let text = String::from_utf8(rec.into_bytes()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let a = Json::parse(lines[0]).unwrap();
        assert_eq!(a.u64_of("seq"), Some(0));
        assert_eq!(a.u64_of("tick"), Some(5));
        assert_eq!(a.str_of("ev"), Some("send"));
        assert_eq!(a.get("ok"), Some(&Json::Bool(true)));
        let b = Json::parse(lines[1]).unwrap();
        assert_eq!(b.u64_of("seq"), Some(1));
        assert_eq!(b.get("skip"), None);
        assert_eq!(b.u64_of("have"), Some(3));
        assert_eq!(
            b.get("path").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[cfg(feature = "record")]
    #[test]
    fn metrics_level_aggregates_but_suppresses_event_lines() {
        let mut rec = Recorder::new(Level::Metrics);
        assert!(rec.event(Level::Hops, 0, "hop").is_none());
        rec.inc("hits", 2);
        rec.gauge_max("hw", 7);
        rec.observe("occ", 3);
        assert!(rec.bytes().is_empty());
        rec.flush_metrics(99);
        let text = String::from_utf8(rec.take_bytes()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("\"tick\":99"));
        // The registry is drained by the flush.
        assert!(rec.metrics().is_empty());
    }

    #[cfg(feature = "record")]
    #[test]
    fn spans_and_take_bytes_keep_sequencing() {
        let mut rec = Recorder::new(Level::Hops);
        rec.span_open(0, "trial:0");
        let first = rec.take_bytes();
        rec.span_close(9, "trial:0");
        let second = rec.take_bytes();
        let a = Json::parse(String::from_utf8(first).unwrap().trim()).unwrap();
        let b = Json::parse(String::from_utf8(second).unwrap().trim()).unwrap();
        assert_eq!(a.u64_of("seq"), Some(0));
        assert_eq!(b.u64_of("seq"), Some(1));
        assert_eq!(b.str_of("ev"), Some("span_close"));
    }
}
