//! Fixed-footprint power-of-two-bucket histograms.
//!
//! A [`PowHistogram`] buckets a `u64` observation `v` by its bit
//! length: bucket 0 holds exactly `0`, bucket `i ≥ 1` holds
//! `2^(i-1) ..= 2^i - 1`. 65 buckets therefore cover the whole `u64`
//! range in a flat 520-byte array — no allocation on the observe path,
//! O(1) merge, and quantiles computed with integer arithmetic only
//! (rule R2 bans NaN-unstable float comparisons from this crate, and a
//! histogram that shows up in goldens must render identically on every
//! platform).
//!
//! Quantiles are *bucket-resolution* upper bounds: `percentile(p)`
//! finds the bucket containing the rank-`⌈count·p/100⌉` observation and
//! reports that bucket's upper bound, clamped to the exact observed
//! maximum. For hop counts and queue depths (small integers, exact max
//! tracked separately) this is tight enough to gate on.

use std::fmt;

const BUCKETS: usize = 65;

/// A power-of-two-bucket histogram over `u64` observations.
#[derive(Clone, PartialEq, Eq)]
pub struct PowHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for PowHistogram {
    fn default() -> Self {
        PowHistogram::new()
    }
}

impl PowHistogram {
    /// An empty histogram.
    pub fn new() -> PowHistogram {
        PowHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `v`: its bit length.
    #[inline]
    fn bucket(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The upper bound of bucket `i` (inclusive).
    fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// The lower bound of bucket `i` (inclusive).
    fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if let Some(slot) = self.counts.get_mut(Self::bucket(v)) {
            *slot += 1;
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The bucket-resolution `p`-th percentile (`p` in `1..=100`):
    /// the upper bound of the bucket holding the observation of rank
    /// `⌈count·p/100⌉`, clamped to the observed maximum. `None` when
    /// empty or `p` is out of range.
    pub fn percentile(&self, p: u8) -> Option<u64> {
        if self.total == 0 || p == 0 || p > 100 {
            return None;
        }
        let rank = (self.total * u64::from(p)).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_hi(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// The median (bucket resolution).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50)
    }

    /// The 95th percentile (bucket resolution).
    pub fn p95(&self) -> Option<u64> {
        self.percentile(95)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &PowHistogram) {
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)`, in increasing order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), Self::bucket_hi(i), c))
    }
}

impl fmt::Debug for PowHistogram {
    /// Compact, golden-stable rendering:
    /// `p2{n=12 sum=40 min=1 p50=3 p95=7 max=9}` (or `p2{empty}`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total == 0 {
            return write!(f, "p2{{empty}}");
        }
        write!(
            f,
            "p2{{n={} sum={} min={} p50={} p95={} max={}}}",
            self.total,
            self.sum,
            self.min,
            self.p50().unwrap_or(0),
            self.p95().unwrap_or(0),
            self.max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = PowHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(format!("{h:?}"), "p2{empty}");
    }

    #[test]
    fn buckets_are_bit_length() {
        assert_eq!(PowHistogram::bucket(0), 0);
        assert_eq!(PowHistogram::bucket(1), 1);
        assert_eq!(PowHistogram::bucket(2), 2);
        assert_eq!(PowHistogram::bucket(3), 2);
        assert_eq!(PowHistogram::bucket(4), 3);
        assert_eq!(PowHistogram::bucket(u64::MAX), 64);
        assert_eq!(PowHistogram::bucket_hi(64), u64::MAX);
        assert_eq!(PowHistogram::bucket_lo(64), 1 << 63);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = PowHistogram::new();
        for v in [1u64, 2, 3, 5, 9] {
            h.observe(v);
        }
        // Ranks: p50 -> rank 3 -> value 3 lives in bucket [2,3] -> 3.
        assert_eq!(h.p50(), Some(3));
        // p95 -> rank 5 -> bucket [8,15], clamped to max 9.
        assert_eq!(h.p95(), Some(9));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.sum(), 20);
        assert_eq!(h.mean(), Some(4.0));
        assert_eq!(format!("{h:?}"), "p2{n=5 sum=20 min=1 p50=3 p95=9 max=9}");
    }

    #[test]
    fn zeros_land_in_their_own_bucket() {
        let mut h = PowHistogram::new();
        h.observe(0);
        h.observe(0);
        h.observe(1);
        assert_eq!(h.p50(), Some(0));
        assert_eq!(h.percentile(100), Some(1));
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(0, 0, 2), (1, 1, 1)]);
    }

    #[test]
    fn merge_matches_joint_observation() {
        let mut a = PowHistogram::new();
        let mut b = PowHistogram::new();
        let mut joint = PowHistogram::new();
        for v in 0..100u64 {
            if v % 3 == 0 {
                a.observe(v * 7)
            } else {
                b.observe(v * 7)
            }
            joint.observe(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut h = PowHistogram::new();
        for v in [0u64, 3, 17, 1 << 40] {
            h.observe(v);
        }
        let snapshot = h.clone();
        // Non-empty ← empty: unchanged.
        h.merge(&PowHistogram::new());
        assert_eq!(h, snapshot);
        // Empty ← non-empty: becomes the other side exactly,
        // including the min sentinel.
        let mut e = PowHistogram::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
        assert_eq!(e.min(), Some(0));
        assert_eq!(e.max(), Some(1 << 40));
        // Empty ← empty stays empty (and still reports no stats).
        let mut ee = PowHistogram::new();
        ee.merge(&PowHistogram::new());
        assert_eq!(ee.count(), 0);
        assert_eq!(ee.min(), None);
    }

    #[test]
    fn merge_propagates_min_max_across_disjoint_ranges() {
        let mut lo = PowHistogram::new();
        lo.observe(2);
        lo.observe(5);
        let mut hi = PowHistogram::new();
        hi.observe(1 << 20);
        lo.merge(&hi);
        assert_eq!(lo.min(), Some(2));
        assert_eq!(lo.max(), Some(1 << 20));
        assert_eq!(lo.count(), 3);
        assert_eq!(lo.sum(), 7 + (1 << 20));
        // The far bucket is reachable by percentile after the merge.
        assert_eq!(lo.percentile(100), Some(1 << 20));
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        // Shard-merge order must never matter: tracecat merges
        // per-worker shard stats in whatever order the files arrive.
        let mut shards: Vec<PowHistogram> = (0..4)
            .map(|s| {
                let mut h = PowHistogram::new();
                for v in 0..50u64 {
                    h.observe(v * 13 + s);
                }
                h
            })
            .collect();
        // Left fold: ((a+b)+c)+d.
        let mut left = shards[0].clone();
        for s in &shards[1..] {
            left.merge(s);
        }
        // Right fold: a+(b+(c+d)).
        let mut right = shards.pop().expect("four shards");
        while let Some(mut s) = shards.pop() {
            s.merge(&right);
            right = s;
        }
        assert_eq!(left, right);
        assert_eq!(left.count(), 200);
    }

    #[test]
    fn incremental_accumulation_matches_batch() {
        // Streaming one observation at a time (tracecat's fold path)
        // must equal observing the same values in one shot.
        let values: Vec<u64> = (0..1000u64)
            .map(|v| v.wrapping_mul(2654435761) >> 16)
            .collect();
        let mut stream = PowHistogram::new();
        let mut batch = PowHistogram::new();
        for &v in &values {
            let mut single = PowHistogram::new();
            single.observe(v);
            stream.merge(&single);
            batch.observe(v);
        }
        assert_eq!(stream, batch);
        assert_eq!(format!("{stream:?}"), format!("{batch:?}"));
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        let mut h = PowHistogram::new();
        h.observe(4);
        assert_eq!(h.percentile(0), None);
        assert_eq!(h.percentile(101), None);
        assert_eq!(h.percentile(1), Some(4));
        assert_eq!(h.percentile(100), Some(4));
    }
}
