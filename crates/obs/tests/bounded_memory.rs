//! The bounded-memory proof for the streaming analytics engine: a
//! ~10 MB and a ~100 MB synthetic trace are both streamed through
//! `stats` under a counting global allocator, and the peak live-bytes
//! delta of the two runs must match — RSS is O(live trials + registry),
//! never O(trace size).
//!
//! This lives in its own integration-test binary (not the obs unit
//! tests) for two reasons: a `#[global_allocator]` is process-wide, and
//! the obs library forbids `unsafe` while the counting allocator shim
//! cannot avoid it. The file contains exactly one `#[test]` so no
//! concurrent test can pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use locality_obs::analytics::stats::StatsMode;
use locality_obs::analytics::synth::SynthTrace;
use locality_obs::analytics::{run_mode, Mode, TailMode, DEFAULT_BUF_BYTES};

/// System allocator wrapped with live/peak byte counters.
struct Counting;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

/// Streams a `trials × msgs` synthetic trace through `stats` and
/// returns `(peak live bytes above the starting waterline, trace
/// bytes consumed)`.
fn peak_over_stats(trials: u64, msgs: u64) -> (usize, u64) {
    let floor = LIVE.load(Ordering::Relaxed);
    PEAK.store(floor, Ordering::Relaxed);
    let mut mode = StatsMode::new();
    let src = SynthTrace::new(trials, msgs, 7);
    let report = run_mode(src, DEFAULT_BUF_BYTES, TailMode::Strict, &mut mode)
        .expect("synthetic trace streams cleanly");
    let rendered = mode.render(&report);
    assert!(rendered.contains(&format!("{trials} trials")), "{rendered}");
    (PEAK.load(Ordering::Relaxed) - floor, report.bytes)
}

#[test]
fn stats_peak_memory_is_independent_of_trace_size() {
    // Warm-up run so one-time registry growth (rule names, fate
    // columns, the read buffer's first allocation) is off the books
    // for both measured runs alike.
    let _ = peak_over_stats(10, 50);

    let (small_peak, small_bytes) = peak_over_stats(10, 1_250);
    let (big_peak, big_bytes) = peak_over_stats(10, 12_500);

    // The big corpus must genuinely be the ≥100 MB acceptance corpus,
    // an order of magnitude past the small one.
    assert!(
        big_bytes >= 100 * 1024 * 1024,
        "big corpus is only {big_bytes} bytes"
    );
    assert!(big_bytes >= 9 * small_bytes);

    // Same trial count, same registry → the 10× corpus may not move
    // the peak beyond noise (buffer reallocation rounding). A reader
    // that buffered whole trials or leaked per-line state would blow
    // past this immediately at ~93 MB of extra input.
    assert!(
        big_peak <= small_peak + 256 * 1024,
        "peak grew with trace size: {small_peak} -> {big_peak} \
         over {small_bytes} -> {big_bytes} bytes"
    );
}
