//! Shared helpers for the repository-level integration test suite in
//! `/tests`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use local_routing::{engine, LocalRouter};
use locality_graph::rng::DetRng;
use locality_graph::{generators, permute, Graph};

/// Asserts that `router`, run with locality `k`, delivers every ordered
/// pair on `g`; panics with a diagnostic otherwise.
pub fn assert_all_delivered<R: LocalRouter + ?Sized>(router: &R, g: &Graph, k: u32) {
    let m = engine::delivery_matrix(g, k, router);
    assert!(
        m.all_delivered(),
        "{} (k={k}) failed on {:?}: first failure {:?} of {}",
        router.name(),
        g,
        m.failures.first(),
        m.failures.len(),
    );
}

/// Asserts delivery at the router's own threshold `T(n)`.
pub fn assert_all_delivered_at_threshold<R: LocalRouter + ?Sized>(router: &R, g: &Graph) {
    let k = router.min_locality(g.node_count());
    assert_all_delivered(router, g, k);
}

/// The worst dilation over the full delivery matrix (requires all
/// delivered).
pub fn worst_dilation<R: LocalRouter + ?Sized>(router: &R, g: &Graph, k: u32) -> f64 {
    let m = engine::delivery_matrix(g, k, router);
    assert!(m.all_delivered(), "{} failed on {g:?}", router.name());
    m.worst_dilation.map(|(d, _, _)| d).unwrap_or(1.0)
}

/// A deterministic batch of random connected graphs (mixed shapes, with
/// scrambled labels) for randomized suites.
pub fn random_suite(seed: u64, count: usize, n_range: std::ops::Range<usize>) -> Vec<Graph> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let n = rng.gen_range(n_range.clone());
            let g = generators::random_mixed(n, &mut rng);
            permute::random_relabel(&g, &mut rng)
        })
        .collect()
}

/// Every connected graph on `n` nodes, each also in a reversed-label
/// variant — the exhaustive gauntlet for small `n`.
pub fn exhaustive_suite(n: usize) -> Vec<Graph> {
    let mut out = Vec::new();
    for g in generators::all_connected(n) {
        out.push(permute::reverse_labels(&g));
        out.push(g);
    }
    out
}
