//! # locality-adversary
//!
//! The negative-result machinery of Bose, Carmi and Durocher, *Bounding
//! the Locality of Distributed Routing Algorithms* (PODC 2009):
//! constructions that defeat k-local routing algorithms when `k` is
//! below the feasibility threshold `T(n)`, and the tight dilation
//! instances for the positive algorithms.
//!
//! * [`thm1`] — the hub-and-four-paths family of Theorem 1 (`k <
//!   ⌊(n+1)/4⌋` defeats every origin-aware, predecessor-aware
//!   algorithm), regenerating Table 3,
//! * [`thm2`] — the three-paths-from-the-origin family of Theorem 2
//!   (`k < ⌊(n+1)/3⌋`, origin-oblivious), regenerating Table 4,
//! * [`thm3`] — the two-path family of Theorem 3/Corollary 2 (`k <
//!   ⌊n/2⌋`, predecessor-oblivious),
//! * [`thm4`] — the dilation lower bound `S(k) = 2n/k − 3`,
//! * [`lemma1`] — probes establishing that local routing functions of
//!   successful algorithms are circular permutations,
//! * [`tight`] — the Fig. 13 (dilation → 7 for Algorithm 1) and Fig. 17
//!   (dilation → 6 for Algorithm 1B) worst-case instances,
//! * [`strategy`] — the enumerable strategy routers the impossibility
//!   proofs quantify over,
//! * [`defeat`] — a black-box search that finds a defeating instance
//!   for a router run below its threshold,
//! * [`scan`] — the deterministic parallel scan primitives the
//!   searches and table regenerations fan out through.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod defeat;
pub mod lemma1;
pub mod scan;
pub mod strategy;
pub mod thm1;
pub mod thm2;
pub mod thm3;
pub mod thm4;
pub mod tight;
