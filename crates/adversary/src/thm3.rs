//! Theorem 3 / Corollary 2 (§4.4–4.5): for every `k < ⌊n/2⌋`, every
//! predecessor-oblivious k-local routing algorithm (origin-aware or not)
//! fails on some connected graph — witnessed by a pair of paths.
//!
//! Both graphs are paths on `n` nodes with the origin `s` placed so that
//! `r = ⌊n/2⌋ - 1` consistently-labelled nodes sit to its left; in `G1`
//! the destination `t` is the far right end, in `G2` it is moved to the
//! far left end. For `k <= r` the k-neighbourhood of `s` (indeed, of
//! every node the message can reach before committing) is identical in
//! both graphs, so a predecessor-oblivious algorithm — whose decision at
//! each node is a *constant* once `(s, t)` are fixed — sends the message
//! the same way in both, and in one of them must eventually turn around,
//! at which point its behaviour is provably cyclic.

use locality_graph::{Graph, GraphBuilder, Label, NodeId};

/// The Theorem 3 pair of paths.
#[derive(Clone, Debug)]
pub struct InstancePair {
    /// `t` at the right end.
    pub g1: Graph,
    /// `t` at the left end.
    pub g2: Graph,
    /// The origin (same id and label in both graphs).
    pub s: NodeId,
    /// The destination node in `g1`.
    pub t1: NodeId,
    /// The destination node in `g2`.
    pub t2: NodeId,
    /// `r = ⌊n/2⌋ - 1`: nodes to the left of `s` shared by both graphs.
    pub r: usize,
}

/// Label shared by the destination in both graphs (distinct from every
/// positional label).
pub const T_LABEL: Label = Label(1_000_000);

/// Builds the pair on `n >= 4` nodes.
///
/// Layout of `g1`: `x1 - … - xr - s - y1 - … - y_{n-r-2} - t`.
/// Layout of `g2`: `t - x1 - … - xr - s - y1 - … - y_{n-r-2}`.
/// All `xi`, `yi`, and `s` carry identical labels in both graphs; `t`
/// carries [`T_LABEL`] in both.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn instance_pair(n: usize) -> InstancePair {
    assert!(n >= 4, "Theorem 3 pair needs n >= 4");
    let r = n / 2 - 1;
    let shared = n - 1; // nodes other than t
    let build = |t_left: bool| -> (Graph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        // Shared chain: labels 0..shared in path order (x's, s, y's).
        let mut chain = Vec::with_capacity(shared);
        for i in 0..shared {
            chain.push(b.add_node(Label(i as u32)).expect("unique labels"));
        }
        for w in chain.windows(2) {
            b.add_edge(w[0], w[1]).expect("simple");
        }
        let t = b.add_node(T_LABEL).expect("unique label");
        if t_left {
            b.add_edge(t, chain[0]).expect("simple");
        } else {
            b.add_edge(chain[shared - 1], t).expect("simple");
        }
        (b.build(), chain[r], t)
    };
    let (g1, s1, t1) = build(false);
    let (g2, s2, t2) = build(true);
    debug_assert_eq!(s1, s2);
    InstancePair {
        g1,
        g2,
        s: s1,
        t1,
        t2,
        r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ArrowRouter;
    use local_routing::engine::{self, RunOptions};
    use local_routing::{Alg3, LocalRouter, LocalView};
    use locality_graph::traversal;

    #[test]
    fn construction_shape() {
        let p = instance_pair(10);
        assert_eq!(p.r, 4);
        for g in [&p.g1, &p.g2] {
            assert_eq!(g.node_count(), 10);
            assert!(traversal::is_connected(g));
            assert_eq!(traversal::diameter(g), Some(9));
        }
        assert_eq!(traversal::distance(&p.g1, p.s, p.t1), Some(5));
        assert_eq!(traversal::distance(&p.g2, p.s, p.t2), Some(5));
    }

    #[test]
    fn origin_views_identical_up_to_k_below_threshold() {
        let p = instance_pair(12);
        for k in 1..=(p.r as u32) {
            let v1 = LocalView::extract(&p.g1, p.s, k).fingerprint();
            let v2 = LocalView::extract(&p.g2, p.s, k).fingerprint();
            assert_eq!(v1, v2, "views differ at k={k}");
        }
        // One hop beyond the threshold the views finally differ.
        let k = p.r as u32 + 1;
        let v1 = LocalView::extract(&p.g1, p.s, k).fingerprint();
        let v2 = LocalView::extract(&p.g2, p.s, k).fingerprint();
        assert_ne!(v1, v2);
    }

    #[test]
    fn every_arrow_strategy_fails_on_one_of_the_pair() {
        // Exhaustively enumerate the direction choices on the nodes the
        // message can actually reach before turning (a representative
        // slice of all predecessor-oblivious behaviours on the pair):
        // direction at s and default elsewhere.
        let p = instance_pair(12);
        let k = p.r as u32;
        for s_high in [false, true] {
            for default_high in [false, true] {
                let mut arrows = std::collections::BTreeMap::new();
                arrows.insert(p.g1.label(p.s), s_high);
                let router = ArrowRouter::new(arrows, default_high);
                let r1 = engine::route(&p.g1, k, &router, p.s, p.t1, &RunOptions::default());
                let r2 = engine::route(&p.g2, k, &router, p.s, p.t2, &RunOptions::default());
                assert!(
                    !(r1.status.is_delivered() && r2.status.is_delivered()),
                    "strategy (s_high={s_high}, default={default_high}) beat both graphs"
                );
            }
        }
    }

    #[test]
    fn alg3_below_threshold_fails_on_one_of_the_pair() {
        let p = instance_pair(12);
        let k = Alg3.min_locality(12) - 1;
        let r1 = engine::route(&p.g1, k, &Alg3, p.s, p.t1, &RunOptions::default());
        let r2 = engine::route(&p.g2, k, &Alg3, p.s, p.t2, &RunOptions::default());
        assert!(!(r1.status.is_delivered() && r2.status.is_delivered()));
    }

    #[test]
    fn alg3_at_threshold_beats_both() {
        let p = instance_pair(12);
        let k = Alg3.min_locality(12);
        let r1 = engine::route(&p.g1, k, &Alg3, p.s, p.t1, &RunOptions::default());
        let r2 = engine::route(&p.g2, k, &Alg3, p.s, p.t2, &RunOptions::default());
        assert!(r1.status.is_delivered() && r2.status.is_delivered());
        assert_eq!(r1.dilation(), Some(1.0));
        assert_eq!(r2.dilation(), Some(1.0));
    }
}
