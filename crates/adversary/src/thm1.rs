//! Theorem 1 (§4.2): for every `k < ⌊(n+1)/4⌋`, every origin-aware,
//! predecessor-aware k-local routing algorithm fails on some connected
//! graph — witnessed by the three-graph family of Fig. 3.
//!
//! Each graph contains a hub `u` of degree 4 whose k-neighbourhood is
//! four disjoint paths `P1..P4` of `r = ⌊(n-3)/4⌋` vertices. The origin
//! `s` hangs beyond `P1` (with the `n mod 4` padding nodes in between).
//! Beyond the hub's horizon, the graphs differ: in `Gi`, the far ends of
//! two of `{P2, P3, P4}` are joined by an edge and the destination `t`
//! hangs off the third:
//!
//! * `G1`: ends of `P3`–`P4` joined, `t` beyond `P2`,
//! * `G2`: ends of `P2`–`P4` joined, `t` beyond `P3`,
//! * `G3`: ends of `P2`–`P3` joined, `t` beyond `P4`.
//!
//! A message that enters a joined path crosses over invisibly and comes
//! back to `u` on the *other* port, so the hub's circular permutation —
//! by Lemma 1 the only freedom a successful algorithm has — determines
//! which ports are ever explored. Each of the six permutations misses
//! `t`'s path on exactly one graph, reproducing Table 3.

use local_routing::engine::{self, RunOptions};
use local_routing::LocalRouter;
use locality_graph::{Graph, GraphBuilder, Label, NodeId};

use crate::strategy::StrategyRouter;

/// Which of the three graphs of the family to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Ends of `P3`,`P4` joined; `t` beyond `P2`.
    G1,
    /// Ends of `P2`,`P4` joined; `t` beyond `P3`.
    G2,
    /// Ends of `P2`,`P3` joined; `t` beyond `P4`.
    G3,
}

impl Variant {
    /// All three variants in order.
    pub const ALL: [Variant; 3] = [Variant::G1, Variant::G2, Variant::G3];

    /// `(a, b, c)`: the 1-based indices of the joined pair and of `t`'s
    /// path.
    fn wiring(self) -> (usize, usize, usize) {
        match self {
            Variant::G1 => (3, 4, 2),
            Variant::G2 => (2, 4, 3),
            Variant::G3 => (2, 3, 4),
        }
    }
}

/// One constructed graph of the family, with its named vertices.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The graph on `n` nodes.
    pub graph: Graph,
    /// The degree-4 hub `u`.
    pub hub: NodeId,
    /// The origin.
    pub s: NodeId,
    /// The destination.
    pub t: NodeId,
    /// Number of vertices on each path `Pi`.
    pub r: usize,
    /// Roots (hub-adjacent vertices) of `P1..P4`, in label order.
    pub path_roots: [NodeId; 4],
}

/// Builds the Theorem 1 graph `variant` on `n >= 11` nodes.
///
/// # Panics
///
/// Panics if `n < 11` (the construction needs `r >= 2` so the crossover
/// stays outside the hub's 1-neighbourhood).
pub fn instance(n: usize, variant: Variant) -> Instance {
    assert!(n >= 11, "Theorem 1 family needs n >= 11");
    let r = (n - 3) / 4;
    let pad = (n - 3) - 4 * r;
    let mut b = GraphBuilder::new();
    let mut next_label = 0u32;
    let mut fresh = |b: &mut GraphBuilder| {
        let id = b
            .add_node(Label(next_label))
            .expect("labels are sequential");
        next_label += 1;
        id
    };
    let hub = fresh(&mut b);
    // Roots first so they occupy labels 1..4 in path order: the strategy
    // position i corresponds to P(i+1).
    let mut roots = Vec::with_capacity(4);
    for _ in 0..4 {
        roots.push(fresh(&mut b));
    }
    let mut ends = Vec::with_capacity(4);
    for &root in &roots {
        b.add_edge(hub, root).expect("simple");
        let mut prev = root;
        for _ in 1..r {
            let x = fresh(&mut b);
            b.add_edge(prev, x).expect("simple");
            prev = x;
        }
        ends.push(prev);
    }
    // Padding chain between P1's end and s.
    let mut prev = ends[0];
    for _ in 0..pad {
        let x = fresh(&mut b);
        b.add_edge(prev, x).expect("simple");
        prev = x;
    }
    let s = fresh(&mut b);
    b.add_edge(prev, s).expect("simple");
    let (a, bb, c) = variant.wiring();
    b.add_edge(ends[a - 1], ends[bb - 1]).expect("simple");
    let t = fresh(&mut b);
    b.add_edge(ends[c - 1], t).expect("simple");
    let graph = b.build();
    assert_eq!(graph.node_count(), n);
    Instance {
        graph,
        hub,
        s,
        t,
        r,
        path_roots: [roots[0], roots[1], roots[2], roots[3]],
    }
}

/// The full three-graph family.
pub fn family(n: usize) -> [Instance; 3] {
    [
        instance(n, Variant::G1),
        instance(n, Variant::G2),
        instance(n, Variant::G3),
    ]
}

/// One row of Table 3: a hub strategy and its fate on `G1..G3`.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// The circular permutation as a cycle order over `P1..P4`
    /// (0-based positions).
    pub cycle_order: Vec<usize>,
    /// `outcomes[i]` is `true` iff the strategy delivers on `G(i+1)`.
    pub outcomes: [bool; 3],
}

/// Simulates all six hub strategies on the family with locality `k`
/// (`1 <= k <= r`), regenerating Table 3.
pub fn table3(n: usize, k: u32) -> Vec<TableRow> {
    let insts = family(n);
    assert!(k >= 1 && (k as usize) <= insts[0].r, "theorem needs k <= r");
    // The six strategies are independent probes of the same family:
    // fan them out; scan::map_ordered keeps the rows in strategy order.
    let orders = StrategyRouter::all_cycle_orders(4);
    crate::scan::map_ordered(&orders, |_, order| {
        let mut outcomes = [false; 3];
        for (i, inst) in insts.iter().enumerate() {
            let router = StrategyRouter::new(inst.graph.label(inst.hub), order, 0);
            let run = engine::route(
                &inst.graph,
                k,
                &router,
                inst.s,
                inst.t,
                &RunOptions::default(),
            );
            outcomes[i] = run.status.is_delivered();
        }
        TableRow {
            cycle_order: order.clone(),
            outcomes,
        }
    })
}

/// The paper's Table 3, in the same strategy order as
/// [`StrategyRouter::all_cycle_orders`]`(4)`: `(P1 P2 P3 P4)`,
/// `(P1 P2 P4 P3)`, `(P1 P3 P2 P4)`, `(P1 P3 P4 P2)`, `(P1 P4 P2 P3)`,
/// `(P1 P4 P3 P2)`.
pub const PAPER_TABLE3: [[bool; 3]; 6] = [
    [true, false, true],
    [true, true, false],
    [false, true, true],
    [true, true, false],
    [false, true, true],
    [true, false, true],
];

/// Runs `router` (assumed origin-aware, predecessor-aware) on the family
/// at `k <= r`, returning the first defeating `(variant, status)` if any.
pub fn defeat_router<R: LocalRouter + ?Sized>(
    router: &R,
    n: usize,
    k: u32,
) -> Option<(Variant, local_routing::engine::RunStatus)> {
    for (inst, variant) in family(n).into_iter().zip(Variant::ALL) {
        let run = engine::route(
            &inst.graph,
            k,
            router,
            inst.s,
            inst.t,
            &RunOptions::default(),
        );
        if !run.status.is_delivered() {
            return Some((variant, run.status));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_routing::{Alg1, Alg1B, LocalRouter};
    use locality_graph::traversal;

    #[test]
    fn construction_shape() {
        let inst = instance(23, Variant::G1);
        assert_eq!(inst.graph.node_count(), 23);
        assert_eq!(inst.r, 5);
        assert!(traversal::is_connected(&inst.graph));
        assert_eq!(inst.graph.degree(inst.hub), 4);
        assert_eq!(inst.graph.degree(inst.s), 1);
        assert_eq!(inst.graph.degree(inst.t), 1);
        // Hub's neighbours in label order are exactly the path roots.
        let nbrs = inst.graph.neighbors(inst.hub);
        assert_eq!(nbrs, &inst.path_roots);
    }

    #[test]
    fn padding_absorbs_n_mod_4() {
        for n in 23..=26 {
            let inst = instance(n, Variant::G2);
            assert_eq!(inst.graph.node_count(), n);
            assert_eq!(inst.r, (n - 3) / 4);
        }
    }

    #[test]
    fn hub_view_identical_across_variants() {
        // The adversary's point: G_k(u) cannot distinguish the variants.
        let n = 23;
        let k = instance(n, Variant::G1).r as u32;
        let fps: Vec<String> = Variant::ALL
            .iter()
            .map(|&v| {
                let inst = instance(n, v);
                local_routing::LocalView::extract(&inst.graph, inst.hub, k).fingerprint()
            })
            .collect();
        assert_eq!(fps[0], fps[1]);
        assert_eq!(fps[1], fps[2]);
    }

    #[test]
    fn table3_matches_paper() {
        for n in [23usize, 24, 31] {
            let r = (n - 3) / 4;
            let rows = table3(n, r as u32);
            for (row, expected) in rows.iter().zip(PAPER_TABLE3) {
                assert_eq!(
                    row.outcomes, expected,
                    "strategy {:?} at n={n}",
                    row.cycle_order
                );
            }
        }
    }

    #[test]
    fn table3_every_strategy_fails_somewhere() {
        for row in table3(27, 5) {
            assert!(
                row.outcomes.iter().any(|&ok| !ok),
                "strategy {:?} should fail on some variant",
                row.cycle_order
            );
        }
    }

    #[test]
    fn alg1_below_threshold_is_defeated() {
        // Algorithm 1 run with k = r < ⌊(n+1)/4⌋... i.e. k below its own
        // threshold must fail on one of the three graphs (its hub
        // behaviour is one of the six strategies).
        let n = 23;
        let k = ((n - 3) / 4) as u32; // r = 5 < ceil(23/4) = 6
        assert!(k < Alg1.min_locality(n));
        assert!(defeat_router(&Alg1, n, k).is_some());
        assert!(defeat_router(&Alg1B, n, k).is_some());
    }

    #[test]
    fn alg1_at_threshold_survives_the_family() {
        // At k >= ceil(n/4) the family no longer defeats Algorithm 1.
        let n = 23;
        let k = Alg1.min_locality(n);
        assert_eq!(defeat_router(&Alg1, n, k), None);
        assert_eq!(defeat_router(&Alg1B, n, k), None);
    }

    #[test]
    fn smaller_k_also_defeats() {
        // The theorem covers every k in 1..=r.
        let n = 23;
        for k in 1..=((n - 3) / 4) as u32 {
            let rows = table3(n, k);
            for (row, expected) in rows.iter().zip(PAPER_TABLE3) {
                assert_eq!(row.outcomes, expected, "k={k}");
            }
        }
    }
}
