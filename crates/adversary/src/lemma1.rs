//! Lemma 1 / Corollary 1 (§4.1): at a node whose local components are
//! all independent and active and whose view contains neither `s` nor
//! `t`, the local routing function of any successful predecessor-aware
//! algorithm is a *circular permutation* of the node's neighbours.
//!
//! This module provides (a) a probe that extracts a router's local
//! routing function `f_u(v)` at such a node and classifies it, and (b)
//! the Fig. 2 constructions that defeat routers violating the lemma
//! (non-surjective maps, fixed points, multi-cycle derangements).

use std::collections::BTreeMap;

use local_routing::engine::{self, RunOptions};
use local_routing::{LocalRouter, LocalView, Packet};
use locality_graph::{generators, Graph, GraphBuilder, Label, NodeId};

/// Classification of a local routing function over `Adj(u)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FunctionKind {
    /// Not surjective onto `Adj(u)` (Lemma 1, Case 1).
    NotSurjective,
    /// A permutation with a fixed point (Case 2).
    NotDerangement,
    /// A derangement with more than one cycle (Case 3).
    NotCircular,
    /// A single cycle covering all of `Adj(u)` — what Lemma 1 demands.
    CircularPermutation,
}

/// Extracts the map `v -> f_u(v)` of `router` at the centre of `view`,
/// with `s` and `t` given as labels outside the view.
///
/// # Panics
///
/// Panics if the router errors at any probe input.
pub fn probe_local_function<R: LocalRouter + ?Sized>(
    router: &R,
    view: &LocalView,
    origin: Label,
    target: Label,
) -> BTreeMap<NodeId, NodeId> {
    let mut f = BTreeMap::new();
    for &v in view.center_neighbors() {
        let packet = Packet {
            origin: Some(origin),
            target,
            predecessor: Some(view.label(v)),
        }
        .masked(router.awareness());
        let out = router
            .decide(&packet, view)
            .unwrap_or_else(|e| panic!("probe failed at v={v}: {e}"));
        let out_node = view.node_by_label(out).expect("decision names a neighbour");
        f.insert(v, out_node);
    }
    f
}

/// Classifies a local routing function per Lemma 1's case analysis.
pub fn classify(f: &BTreeMap<NodeId, NodeId>) -> FunctionKind {
    let domain: Vec<NodeId> = f.keys().copied().collect();
    let image: std::collections::BTreeSet<NodeId> = f.values().copied().collect();
    if image.len() != domain.len() || !domain.iter().all(|x| image.contains(x)) {
        return FunctionKind::NotSurjective;
    }
    if f.iter().any(|(a, b)| a == b) {
        return FunctionKind::NotDerangement;
    }
    // Walk the cycle from the first element; circular iff it covers all.
    let start = domain[0];
    let mut seen = 1;
    let mut cur = f[&start];
    while cur != start {
        cur = f[&cur];
        seen += 1;
    }
    if seen == domain.len() {
        FunctionKind::CircularPermutation
    } else {
        FunctionKind::NotCircular
    }
}

/// The Fig. 2 graph: a spider with `legs` legs of `k` nodes around a hub
/// `u` (all components independent and active), with the origin pendant
/// beyond leg `s_leg`'s end and the destination pendant beyond leg
/// `t_leg`'s end.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// The graph.
    pub graph: Graph,
    /// The hub `u`.
    pub hub: NodeId,
    /// Origin (degree 1, outside `G_k(u)`).
    pub s: NodeId,
    /// Destination (degree 1, outside `G_k(u)`).
    pub t: NodeId,
}

/// Builds the Fig. 2 construction.
///
/// # Panics
///
/// Panics unless `legs >= 2`, `k >= 1`, and `s_leg != t_leg < legs`.
pub fn fig2(legs: usize, k: u32, s_leg: usize, t_leg: usize) -> Fig2 {
    assert!(legs >= 2 && k >= 1 && s_leg != t_leg && s_leg < legs && t_leg < legs);
    let spider = generators::spider(legs, k as usize);
    let mut b = GraphBuilder::new();
    for x in spider.nodes() {
        b.add_node(spider.label(x)).expect("fresh labels");
    }
    for (x, y) in spider.edges() {
        b.add_edge(x, y).expect("simple");
    }
    let leg_end = |j: usize| NodeId((1 + j * k as usize + (k as usize - 1)) as u32);
    let next = spider.node_count() as u32;
    let s = b.add_node(Label(next)).expect("fresh");
    b.add_edge(leg_end(s_leg), s).expect("simple");
    let t = b.add_node(Label(next + 1)).expect("fresh");
    b.add_edge(leg_end(t_leg), t).expect("simple");
    Fig2 {
        graph: b.build(),
        hub: NodeId(0),
        s,
        t,
    }
}

/// Runs `router` on every `(s_leg, t_leg)` placement of the Fig. 2
/// construction and returns the first defeating placement, if any.
pub fn defeat_on_fig2<R: LocalRouter + ?Sized>(
    router: &R,
    legs: usize,
    k: u32,
) -> Option<(usize, usize)> {
    for s_leg in 0..legs {
        for t_leg in 0..legs {
            if s_leg == t_leg {
                continue;
            }
            let f = fig2(legs, k, s_leg, t_leg);
            let run = engine::route(&f.graph, k, router, f.s, f.t, &RunOptions::default());
            if !run.status.is_delivered() {
                return Some((s_leg, t_leg));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_routing::{Alg1, Alg1B, Alg2, Awareness, RoutingError};

    /// Router with a fixed-point local function (f(v) = v for one leg).
    struct Reflector;

    impl LocalRouter for Reflector {
        fn name(&self) -> &'static str {
            "reflector"
        }
        fn awareness(&self) -> Awareness {
            Awareness::ORIGIN_OBLIVIOUS
        }
        fn min_locality(&self, _n: usize) -> u32 {
            1
        }
        fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
            if let Some(t_node) = view.node_by_label(packet.target) {
                if let Some(step) = view.shortest_step_toward(t_node) {
                    return Ok(view.label(step));
                }
            }
            // Send the message straight back where it came from; first
            // hop goes to the lowest-label neighbour.
            let mut nbrs: Vec<NodeId> = view.center_neighbors().to_vec();
            view.sort_by_label(&mut nbrs);
            match packet.predecessor {
                Some(l) if view.contains_label(l) => Ok(l),
                _ => Ok(view.label(nbrs[0])),
            }
        }
    }

    #[test]
    fn fig2_shape() {
        let f = fig2(3, 4, 0, 2);
        assert_eq!(f.graph.node_count(), 3 * 4 + 3);
        assert_eq!(f.graph.degree(f.hub), 3);
        assert_eq!(f.graph.degree(f.s), 1);
        assert_eq!(f.graph.degree(f.t), 1);
    }

    #[test]
    fn alg1_local_function_is_circular_on_lemma1_views() {
        // At the hub of a spider with independent active components and
        // s, t outside the view, Algorithms 1/1B/2 must produce circular
        // permutations — the positive direction of Lemma 1.
        // Proposition 1 caps the active degree at 3 for Algorithm 1's
        // regime, Proposition 2 at 2 for Algorithm 2's: probe each
        // router at every hub degree its regime allows.
        let k = 3;
        for (router, max_legs) in [
            (&Alg1 as &dyn LocalRouter, 3usize),
            (&Alg1B as &dyn LocalRouter, 3),
            (&Alg2 as &dyn LocalRouter, 2),
        ] {
            for legs in 2..=max_legs {
                let g = generators::spider(legs, k as usize);
                let view = LocalView::extract(&g, NodeId(0), k);
                let f = probe_local_function(&router, &view, Label(900), Label(901));
                assert_eq!(
                    classify(&f),
                    FunctionKind::CircularPermutation,
                    "{} at {legs} legs",
                    router.name()
                );
            }
        }
    }

    #[test]
    fn four_active_legs_exceed_proposition_one() {
        // A spider with four depth-k legs has 4k + 1 > 4k nodes, so
        // k < n/4: Algorithm 1's precondition (Prop. 1) fails and it
        // reports the violation instead of guessing.
        let g = generators::spider(4, 3);
        let view = LocalView::extract(&g, NodeId(0), 3);
        let packet = Packet {
            origin: Some(Label(900)),
            target: Label(901),
            predecessor: Some(view.label(NodeId(1))),
        };
        assert_eq!(
            Alg1.decide(&packet, &view),
            Err(RoutingError::TooManyActiveComponents { found: 4, max: 3 })
        );
    }

    #[test]
    fn reflector_violates_lemma1_and_is_defeated() {
        let g = generators::spider(3, 3);
        let view = LocalView::extract(&g, NodeId(0), 3);
        let f = probe_local_function(&Reflector, &view, Label(900), Label(901));
        assert_eq!(classify(&f), FunctionKind::NotDerangement);
        assert!(defeat_on_fig2(&Reflector, 3, 3).is_some());
    }

    #[test]
    fn lowest_rank_forward_is_not_surjective_and_defeated() {
        use local_routing::baselines::LowestRankForward;
        let g = generators::spider(3, 3);
        let view = LocalView::extract(&g, NodeId(0), 3);
        let f = probe_local_function(&LowestRankForward, &view, Label(900), Label(901));
        assert_eq!(classify(&f), FunctionKind::NotSurjective);
        assert!(defeat_on_fig2(&LowestRankForward, 3, 3).is_some());
    }

    #[test]
    fn classify_detects_multi_cycle_derangements() {
        let mut f = BTreeMap::new();
        // Two 2-cycles on four neighbours.
        f.insert(NodeId(1), NodeId(2));
        f.insert(NodeId(2), NodeId(1));
        f.insert(NodeId(3), NodeId(4));
        f.insert(NodeId(4), NodeId(3));
        assert_eq!(classify(&f), FunctionKind::NotCircular);
    }

    #[test]
    fn alg1_survives_all_fig2_placements() {
        // n = 3k + 3 here, so k = ceil(n/4) keeps the algorithm in its
        // guaranteed regime: k=3, n=12 requires k >= 3.
        assert_eq!(defeat_on_fig2(&Alg1, 3, 3), None);
    }
}
