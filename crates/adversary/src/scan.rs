//! Reusable parallel scan over independent adversarial probes.
//!
//! The searches in this crate share one shape: a list of independent
//! jobs — candidate graphs, strategy permutations — each checked by a
//! pure function, with a result that must not depend on how many
//! threads ran or how the OS scheduled them. This module factors that
//! shape out of `defeat.rs` into two primitives:
//!
//! * [`map_ordered`] evaluates every job and returns the results in
//!   input order — a parallel `map` whose output is indistinguishable
//!   from the sequential loop it replaces.
//! * [`first_match`] finds the **lowest-index** job whose check
//!   returns `Some`, sharing a best-index-so-far across workers so
//!   higher-index jobs are pruned once a better witness exists.
//!
//! Work is assigned by striding (worker `w` of `W` takes jobs `w`,
//! `w + W`, …), which spreads low indices across all workers: for
//! `first_match` that means a low witness is found early and most of
//! the tail is skipped, and for `map_ordered` it balances cost when
//! expensive jobs cluster at one end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Number of scan workers for `jobs` independent jobs: the machine's
/// available parallelism, capped at 8 (the probes are CPU-bound and
/// short-lived), never more than there are jobs.
pub fn threads_for(jobs: usize) -> usize {
    thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(8)
        .min(jobs.max(1))
}

/// Evaluates `f(index, &jobs[index])` for every job on up to
/// [`threads_for`] scoped workers and returns the results in job
/// order, exactly as a sequential loop would.
///
/// # Panics
///
/// Re-raises the panic of any job that panicked, after all workers
/// have stopped.
pub fn map_ordered<T, R, F>(jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads_for(jobs.len());
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(jobs.len());
    if workers <= 1 {
        tagged.extend(jobs.iter().enumerate().map(|(i, t)| (i, f(i, t))));
    } else {
        let f = &f;
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || -> Vec<(usize, R)> {
                        jobs.iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, t)| (i, f(i, t)))
                            .collect()
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => tagged.extend(part),
                    Err(cause) => std::panic::resume_unwind(cause),
                }
            }
        });
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Runs `check(index, &jobs[index])` across up to [`threads_for`]
/// workers and returns the match with the **lowest job index**, or
/// `None` if no job matches. Identical to a sequential
/// first-`Some` scan regardless of thread count or scheduling.
///
/// Workers publish the best index found so far through a shared
/// atomic and skip any job that cannot improve on it, so a scan
/// whose witness sits at a low index finishes without checking most
/// of the list.
///
/// # Panics
///
/// Re-raises the panic of any check that panicked, after all workers
/// have stopped.
pub fn first_match<T, R, F>(jobs: &[T], check: F) -> Option<(usize, R)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Option<R> + Sync,
{
    let workers = threads_for(jobs.len());
    let best = AtomicUsize::new(usize::MAX);
    let mut found: Vec<Option<(usize, R)>> = Vec::with_capacity(workers);
    {
        let run_worker = |w: usize| -> Option<(usize, R)> {
            let mut local: Option<(usize, R)> = None;
            for (idx, job) in jobs.iter().enumerate().skip(w).step_by(workers) {
                if idx >= best.load(Ordering::Relaxed) {
                    continue;
                }
                if let Some(r) = check(idx, job) {
                    best.fetch_min(idx, Ordering::Relaxed);
                    if local.as_ref().is_none_or(|&(i, _)| idx < i) {
                        local = Some((idx, r));
                    }
                }
            }
            local
        };
        if workers <= 1 {
            found.push(run_worker(0));
        } else {
            let run_worker = &run_worker;
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| scope.spawn(move || run_worker(w)))
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(hit) => found.push(hit),
                        Err(cause) => std::panic::resume_unwind(cause),
                    }
                }
            });
        }
    }
    found.into_iter().flatten().min_by_key(|&(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_ordered_matches_sequential() {
        let jobs: Vec<u32> = (0..37).rev().collect();
        let seq: Vec<u64> = jobs
            .iter()
            .enumerate()
            .map(|(i, &t)| u64::from(t) * 3 + i as u64)
            .collect();
        let par = map_ordered(&jobs, |i, &t| u64::from(t) * 3 + i as u64);
        assert_eq!(par, seq);
    }

    #[test]
    fn first_match_returns_lowest_index() {
        // Matches at 5, 12, 29 — every thread count must report 5.
        let jobs: Vec<usize> = (0..64).collect();
        let hit = first_match(&jobs, |_, &j| {
            (j == 5 || j == 12 || j == 29).then_some(j * 10)
        });
        assert_eq!(hit, Some((5, 50)));
    }

    #[test]
    fn first_match_none_when_nothing_matches() {
        let jobs: Vec<usize> = (0..16).collect();
        assert_eq!(first_match(&jobs, |_, _| None::<()>), None);
        assert_eq!(first_match(&[], |_, _: &usize| Some(())), None);
    }

    #[test]
    #[should_panic(expected = "probe 4 failed")]
    fn map_ordered_propagates_panics() {
        let jobs: Vec<usize> = (0..8).collect();
        map_ordered(&jobs, |i, _| assert!(i != 4, "probe {i} failed"));
    }
}
