//! Theorem 4 (§4.6): no k-local routing algorithm, of any awareness
//! combination, can guarantee dilation below `(2n - 3k - 1) / (k + 1)`
//! when `k < n/2`; in the limit `S(k) = 2n/k - 3`.
//!
//! The witness family is the set of labelled paths (Fig. 6): when the
//! current node's view is a path of length `2k` in both directions, the
//! algorithm cannot tell which side the destination is on, and the
//! adversary places it so that the first committed direction is wrong,
//! forcing a detour of `2(n - 2k - 1)` extra edges over a shortest path
//! of length `k + 1`.

use local_routing::engine::{self, RunOptions};
use local_routing::LocalRouter;
use locality_graph::{generators, permute, Graph, NodeId};

/// The exact finite-`n` lower bound `(2n - 3k - 1) / (k + 1)` of
/// Theorem 4 (valid for `k < n/2`).
pub fn dilation_lower_bound(n: usize, k: u32) -> f64 {
    (2.0 * n as f64 - 3.0 * k as f64 - 1.0) / (k as f64 + 1.0)
}

/// The asymptotic form `S(k) = 2n/k - 3` (Equation 2).
pub fn s_of_k(n: usize, k: u32) -> f64 {
    2.0 * n as f64 / k as f64 - 3.0
}

/// The Fig. 6 path instances: a path on `n` nodes with the origin
/// placed `k + 1` hops from one end (where `t` sits) and the long
/// stretch of `n - k - 2` nodes on the other side. Returns the four
/// labelled variants (destination on either side × label order
/// reversed or not) with their `(s, t)` pairs.
pub fn path_instances(n: usize, k: u32) -> Vec<(Graph, NodeId, NodeId)> {
    assert!((k as usize) < n / 2, "theorem needs k < n/2");
    let base = generators::path(n);
    let mut out = Vec::new();
    for reversed in [false, true] {
        let g = if reversed {
            permute::reverse_labels(&base)
        } else {
            base.clone()
        };
        // Destination at the right end, origin k + 1 to its left.
        out.push((
            g.clone(),
            NodeId((n - 2 - k as usize) as u32),
            NodeId(n as u32 - 1),
        ));
        // Destination at the left end, origin k + 1 to its right.
        out.push((g, NodeId(k + 1), NodeId(0)));
    }
    out
}

/// Runs `router` over [`path_instances`] and returns the worst dilation
/// observed (`None` if the router failed on every instance).
pub fn measured_worst_dilation<R: LocalRouter + ?Sized>(
    router: &R,
    n: usize,
    k: u32,
) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for (g, s, t) in path_instances(n, k) {
        let run = engine::route(&g, k, router, s, t, &RunOptions::default());
        if let Some(d) = run.dilation() {
            if worst.is_none_or(|w| d > w) {
                worst = Some(d);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_routing::{Alg1, Alg1B, Alg2, LocalRouter};

    #[test]
    fn bound_values_match_paper_landmarks() {
        // k = n/4 -> 5, k = n/3 -> 3, k -> n/2 -> 1 in the limit.
        let n = 40_000;
        assert!((s_of_k(n, n as u32 / 4) - 5.0).abs() < 1e-9);
        assert!((s_of_k(n, n as u32 / 3) - 3.0).abs() < 2e-4);
        assert!((s_of_k(n, n as u32 / 2) - 1.0).abs() < 1e-9);
        assert!(dilation_lower_bound(n, n as u32 / 4) < s_of_k(n, n as u32 / 4));
    }

    #[test]
    fn alg1_meets_the_lower_bound_on_paths() {
        // On some labelled path the realised dilation must be at least
        // the theorem's bound (any correct algorithm pays it).
        for n in [16usize, 24, 32] {
            let k = Alg1.min_locality(n);
            let bound = dilation_lower_bound(n, k);
            for router in [&Alg1 as &dyn LocalRouter, &Alg1B] {
                let worst = measured_worst_dilation(router, n, k).expect("delivers on paths");
                assert!(
                    worst >= bound - 1e-9,
                    "{}: measured {worst} < bound {bound} at n={n}",
                    router.name()
                );
            }
        }
    }

    #[test]
    fn alg2_meets_the_lower_bound_on_paths() {
        for n in [15usize, 21, 30] {
            let k = Alg2.min_locality(n);
            let bound = dilation_lower_bound(n, k);
            let worst = measured_worst_dilation(&Alg2, n, k).expect("delivers on paths");
            assert!(worst >= bound - 1e-9, "measured {worst} < bound {bound}");
            // ... and stays under its Theorem 7 upper bound of 3.
            assert!(worst < 3.0);
        }
    }

    #[test]
    fn alg1_exactly_meets_the_lower_bound_on_paths() {
        // On the adversarial path, Algorithm 1 walks away from t to the
        // last node whose view still shows two active components — n -
        // 2k - 1 hops out — then turns (rule U1 fires as soon as the
        // dead end becomes visible) and returns: exactly the route the
        // Theorem 4 adversary forces, no more. So its dilation *equals*
        // the lower bound (2n - 3k - 1)/(k + 1) on this family.
        for n in [32usize, 64] {
            let k = Alg1.min_locality(n);
            let worst = measured_worst_dilation(&Alg1, n, k).unwrap();
            let bound = dilation_lower_bound(n, k);
            assert!(
                (worst - bound).abs() < 1e-9,
                "n={n}: measured {worst} != bound {bound}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k < n/2")]
    fn rejects_k_at_least_half() {
        path_instances(10, 5);
    }
}
