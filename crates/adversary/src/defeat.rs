//! Black-box adversary: given any router and a locality parameter below
//! its threshold, search the paper's families and random suites for a
//! defeating instance.

use local_routing::engine::{self, RunStatus};
use local_routing::{Awareness, LocalRouter};
use locality_graph::rng::DetRng;
use locality_graph::{generators, permute, Graph, NodeId};

use crate::{scan, thm1, thm2, thm3};

/// A witness that a router fails.
#[derive(Clone, Debug)]
pub struct Defeat {
    /// The defeating graph.
    pub graph: Graph,
    /// Origin of the lost message.
    pub s: NodeId,
    /// Destination of the lost message.
    pub t: NodeId,
    /// How the run failed.
    pub status: RunStatus,
    /// Which family produced the witness.
    pub family: &'static str,
}

/// Searches for an instance on `n` nodes that defeats `router` at
/// locality `k`. Tries the theorem family matching the router's
/// awareness first, then the other families, then a seeded random suite.
/// Returns `None` if everything was delivered (expected when `k` is at
/// or above the router's threshold).
pub fn find_defeat<R: LocalRouter + ?Sized>(router: &R, n: usize, k: u32) -> Option<Defeat> {
    // Theorem families, ordered by which matches the awareness class.
    let aware = router.awareness();
    let mut probes: Vec<Box<dyn Fn() -> Option<Defeat>>> = Vec::new();
    let try_thm1 = || -> Option<Defeat> {
        if n < 11 || k as usize > (n - 3) / 4 {
            return None;
        }
        thm1::defeat_router(router, n, k).map(|(v, status)| {
            let inst = thm1::instance(n, v);
            Defeat {
                graph: inst.graph,
                s: inst.s,
                t: inst.t,
                status,
                family: "theorem-1",
            }
        })
    };
    let try_thm2 = || -> Option<Defeat> {
        if n < 8 || k as usize > (n - 2) / 3 {
            return None;
        }
        thm2::defeat_router(router, n, k).map(|(v, status)| {
            let inst = thm2::instance(n, v);
            Defeat {
                graph: inst.graph,
                s: inst.s,
                t: inst.t,
                status,
                family: "theorem-2",
            }
        })
    };
    let try_thm3 = || -> Option<Defeat> {
        if n < 4 || k as usize >= n / 2 {
            return None;
        }
        let p = thm3::instance_pair(n);
        for (g, s, t) in [(p.g1.clone(), p.s, p.t1), (p.g2.clone(), p.s, p.t2)] {
            let run = engine::route(&g, k, router, s, t, &Default::default());
            if !run.status.is_delivered() {
                return Some(Defeat {
                    graph: g,
                    s,
                    t,
                    status: run.status,
                    family: "theorem-3",
                });
            }
        }
        None
    };
    match aware {
        Awareness {
            origin: true,
            predecessor: true,
        } => {
            probes.push(Box::new(try_thm1));
            probes.push(Box::new(try_thm2));
            probes.push(Box::new(try_thm3));
        }
        Awareness {
            origin: false,
            predecessor: true,
        } => {
            probes.push(Box::new(try_thm2));
            probes.push(Box::new(try_thm1));
            probes.push(Box::new(try_thm3));
        }
        _ => {
            probes.push(Box::new(try_thm3));
            probes.push(Box::new(try_thm1));
            probes.push(Box::new(try_thm2));
        }
    }
    for probe in probes {
        if let Some(d) = probe() {
            return Some(d);
        }
    }
    // Random fallback: generate the candidate suite up front (one
    // deterministic PRNG stream), then scan it from several threads.
    // The winner is the **lowest-index** defeating candidate, so the
    // result is identical to the old sequential scan regardless of
    // thread count or scheduling.
    let mut rng = DetRng::seed_from_u64(0x10ca1);
    let candidates: Vec<Graph> = (0..64)
        .map(|_| permute::random_relabel(&generators::random_mixed(n, &mut rng), &mut rng))
        .collect();
    // scan::first_match prunes against the lowest witness found so
    // far and returns the lowest-index hit, identical to a sequential
    // scan regardless of thread count.
    scan::first_match(&candidates, |_, g| {
        let m = engine::delivery_matrix(g, k, router);
        m.failures.into_iter().next()
    })
    .and_then(|(idx, (s, t, status))| {
        candidates.get(idx).map(|g| Defeat {
            graph: g.clone(),
            s,
            t,
            status,
            family: "random",
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_routing::baselines::{LowestRankForward, RightHandRule};
    use local_routing::{Alg1, Alg2, Alg3};

    #[test]
    fn defeats_algorithms_below_threshold() {
        let n = 23;
        for (router, k) in [
            (&Alg1 as &dyn LocalRouter, Alg1.min_locality(n) - 1),
            (&Alg2, Alg2.min_locality(n) - 1),
            (&Alg3, Alg3.min_locality(n) - 1),
        ] {
            let d = find_defeat(&router, n, k);
            assert!(
                d.is_some(),
                "{} not defeated at k below threshold",
                router.name()
            );
        }
    }

    #[test]
    fn no_defeat_at_threshold() {
        let n = 23;
        for router in [&Alg1 as &dyn LocalRouter, &Alg2, &Alg3] {
            let k = router.min_locality(n);
            assert!(
                find_defeat(&router, n, k).is_none(),
                "{} unexpectedly defeated at its threshold",
                router.name()
            );
        }
    }

    #[test]
    fn defeats_baselines() {
        assert!(find_defeat(&RightHandRule, 23, 2).is_some());
        assert!(find_defeat(&LowestRankForward, 23, 2).is_some());
    }
}
