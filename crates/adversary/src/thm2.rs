//! Theorem 2 (§4.3): for every `k < ⌊(n+1)/3⌋`, every origin-oblivious,
//! predecessor-aware k-local routing algorithm fails on some connected
//! graph — witnessed by the three-graph family of Fig. 4.
//!
//! Here the origin `s` itself is the degree-3 hub with three paths
//! `P1..P3` of `r = ⌊(n-2)/3⌋` vertices; `t` hangs beyond one path (with
//! the `n mod 3` padding nodes in between) and the other two paths' far
//! ends are joined:
//!
//! * `G1`: ends of `P2`–`P3` joined, `t` beyond `P1`,
//! * `G2`: ends of `P1`–`P3` joined, `t` beyond `P2`,
//! * `G3`: ends of `P1`–`P2` joined, `t` beyond `P3`.
//!
//! By Corollary 1 a successful algorithm's behaviour at `s` is one of
//! two circular permutations, paired with one of three initial
//! directions: six strategies, each defeated by exactly one variant —
//! Table 4.

use local_routing::engine::{self, RunOptions};
use local_routing::LocalRouter;
use locality_graph::{Graph, GraphBuilder, Label, NodeId};

use crate::strategy::StrategyRouter;

/// Which of the three graphs of the family to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Ends of `P2`,`P3` joined; `t` beyond `P1`.
    G1,
    /// Ends of `P1`,`P3` joined; `t` beyond `P2`.
    G2,
    /// Ends of `P1`,`P2` joined; `t` beyond `P3`.
    G3,
}

impl Variant {
    /// All three variants in order.
    pub const ALL: [Variant; 3] = [Variant::G1, Variant::G2, Variant::G3];

    fn wiring(self) -> (usize, usize, usize) {
        match self {
            Variant::G1 => (2, 3, 1),
            Variant::G2 => (1, 3, 2),
            Variant::G3 => (1, 2, 3),
        }
    }
}

/// One constructed graph of the family.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The graph on `n` nodes.
    pub graph: Graph,
    /// The origin — also the degree-3 hub.
    pub s: NodeId,
    /// The destination.
    pub t: NodeId,
    /// Number of vertices on each path.
    pub r: usize,
    /// Roots of `P1..P3` in label order.
    pub path_roots: [NodeId; 3],
}

/// Builds the Theorem 2 graph `variant` on `n >= 8` nodes.
///
/// # Panics
///
/// Panics if `n < 8`.
pub fn instance(n: usize, variant: Variant) -> Instance {
    assert!(n >= 8, "Theorem 2 family needs n >= 8");
    let r = (n - 2) / 3;
    let pad = (n - 2) - 3 * r;
    let mut b = GraphBuilder::new();
    let mut next_label = 0u32;
    let mut fresh = |b: &mut GraphBuilder| {
        let id = b
            .add_node(Label(next_label))
            .expect("labels are sequential");
        next_label += 1;
        id
    };
    let s = fresh(&mut b);
    let mut roots = Vec::with_capacity(3);
    for _ in 0..3 {
        roots.push(fresh(&mut b));
    }
    let mut ends = Vec::with_capacity(3);
    for &root in &roots {
        b.add_edge(s, root).expect("simple");
        let mut prev = root;
        for _ in 1..r {
            let x = fresh(&mut b);
            b.add_edge(prev, x).expect("simple");
            prev = x;
        }
        ends.push(prev);
    }
    let (a, bb, c) = variant.wiring();
    b.add_edge(ends[a - 1], ends[bb - 1]).expect("simple");
    // Padding between t's path and t.
    let mut prev = ends[c - 1];
    for _ in 0..pad {
        let x = fresh(&mut b);
        b.add_edge(prev, x).expect("simple");
        prev = x;
    }
    let t = fresh(&mut b);
    b.add_edge(prev, t).expect("simple");
    let graph = b.build();
    assert_eq!(graph.node_count(), n);
    Instance {
        graph,
        s,
        t,
        r,
        path_roots: [roots[0], roots[1], roots[2]],
    }
}

/// The full three-graph family.
pub fn family(n: usize) -> [Instance; 3] {
    [
        instance(n, Variant::G1),
        instance(n, Variant::G2),
        instance(n, Variant::G3),
    ]
}

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Circular permutation as a cycle order over `P1..P3` positions.
    pub cycle_order: Vec<usize>,
    /// Initial direction: position (0-based) of the neighbour the first
    /// hop targets.
    pub initial: usize,
    /// `outcomes[i]` is `true` iff the strategy delivers on `G(i+1)`.
    pub outcomes: [bool; 3],
}

/// Simulates all six `(permutation, initial direction)` strategies on
/// the family with locality `k` (`1 <= k <= r`), regenerating Table 4.
pub fn table4(n: usize, k: u32) -> Vec<TableRow> {
    let insts = family(n);
    assert!(k >= 1 && (k as usize) <= insts[0].r, "theorem needs k <= r");
    // Six independent (permutation, initial direction) strategies:
    // fan them out; scan::map_ordered keeps the rows in enumeration
    // order.
    let strategies: Vec<(Vec<usize>, usize)> = StrategyRouter::all_cycle_orders(3)
        .into_iter()
        .flat_map(|order| (0..3usize).map(move |initial| (order.clone(), initial)))
        .collect();
    crate::scan::map_ordered(&strategies, |_, (order, initial)| {
        let mut outcomes = [false; 3];
        for (i, inst) in insts.iter().enumerate() {
            let router = StrategyRouter::new(inst.graph.label(inst.s), order, *initial);
            let run = engine::route(
                &inst.graph,
                k,
                &router,
                inst.s,
                inst.t,
                &RunOptions::default(),
            );
            outcomes[i] = run.status.is_delivered();
        }
        TableRow {
            cycle_order: order.clone(),
            initial: *initial,
            outcomes,
        }
    })
}

/// The paper's Table 4, rows in the order produced by [`table4`]:
/// permutation `(P1 P2 P3)` with initial directions `a`, `b`, `c`, then
/// `(P1 P3 P2)` with `a`, `b`, `c`.
pub const PAPER_TABLE4: [[bool; 3]; 6] = [
    [true, false, true],
    [true, true, false],
    [false, true, true],
    [true, true, false],
    [false, true, true],
    [true, false, true],
];

/// Runs `router` on the family at `k <= r`, returning the first
/// defeating `(variant, status)` if any.
pub fn defeat_router<R: LocalRouter + ?Sized>(
    router: &R,
    n: usize,
    k: u32,
) -> Option<(Variant, local_routing::engine::RunStatus)> {
    for (inst, variant) in family(n).into_iter().zip(Variant::ALL) {
        let run = engine::route(
            &inst.graph,
            k,
            router,
            inst.s,
            inst.t,
            &RunOptions::default(),
        );
        if !run.status.is_delivered() {
            return Some((variant, run.status));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_routing::{Alg2, LocalRouter};
    use locality_graph::traversal;

    #[test]
    fn construction_shape() {
        let inst = instance(20, Variant::G3);
        assert_eq!(inst.graph.node_count(), 20);
        assert_eq!(inst.r, 6);
        assert!(traversal::is_connected(&inst.graph));
        assert_eq!(inst.graph.degree(inst.s), 3);
        assert_eq!(inst.graph.degree(inst.t), 1);
        assert_eq!(inst.graph.neighbors(inst.s), &inst.path_roots);
    }

    #[test]
    fn origin_view_identical_across_variants() {
        let n = 20;
        let k = instance(n, Variant::G1).r as u32;
        let fps: Vec<String> = Variant::ALL
            .iter()
            .map(|&v| {
                let inst = instance(n, v);
                local_routing::LocalView::extract(&inst.graph, inst.s, k).fingerprint()
            })
            .collect();
        assert_eq!(fps[0], fps[1]);
        assert_eq!(fps[1], fps[2]);
    }

    #[test]
    fn table4_matches_paper() {
        for n in [20usize, 21, 22] {
            let r = (n - 2) / 3;
            let rows = table4(n, r as u32);
            assert_eq!(rows.len(), 6);
            for (row, expected) in rows.iter().zip(PAPER_TABLE4) {
                assert_eq!(
                    row.outcomes, expected,
                    "strategy {:?}/{} at n={n}",
                    row.cycle_order, row.initial
                );
            }
        }
    }

    #[test]
    fn every_strategy_fails_somewhere() {
        for row in table4(20, 4) {
            assert!(row.outcomes.iter().any(|&ok| !ok));
        }
    }

    #[test]
    fn alg2_below_threshold_is_defeated_and_at_threshold_survives() {
        let n = 20;
        let low = ((n - 2) / 3) as u32; // 6 < ceil(20/3) = 7
        assert!(low < Alg2.min_locality(n));
        assert!(defeat_router(&Alg2, n, low).is_some());
        assert_eq!(defeat_router(&Alg2, n, Alg2.min_locality(n)), None);
    }
}
