//! The tight worst-case dilation instances: Fig. 13 (Algorithm 1 →
//! dilation 7, Lemma 8) and Fig. 17 (Algorithm 1B → dilation 6,
//! Lemma 16).
//!
//! ### Fig. 13 (`fig13`)
//!
//! A cycle of length `n - k - 1` containing the origin `s`, with a
//! pendant path of length `k + 1` to the destination `t` hanging two
//! hops away from `s` at node `c`. Labels are arranged so Algorithm 1
//! orbits the whole cycle (rule S2 sends it out clockwise, rule U3
//! passes it through `c`), bounces at `s`, orbits back to `c` and only
//! then descends to `t`: route `2n - k - 3` versus shortest path
//! `k + 3`, i.e. dilation `7 - 96/(n + 12)` at `k = n/4`.
//!
//! ### Fig. 17 (`fig17`)
//!
//! Our reconstruction (the figure itself is not recoverable from the
//! text; see DESIGN.md) realises the paper's exact tight values. With
//! `n = 4k`: a main cycle of length `2k + 1` through `e`, `c` and `u`
//! (with `u` adjacent to `e`); a branch of `k - 2` edges from `e` to the
//! origin `s`; a pendant of `k + 1` edges from `c` to the destination
//! `t` whose first node is `d`; and the shortcut edge `{s, d}` with
//! globally minimal rank, which the preprocessing step classifies
//! dormant (it closes a local cycle of length `k + 5`). The shortest
//! path uses the dormant edge (`k + 1` hops); Algorithm 1B climbs out of
//! the branch (rule S1/US1), circles the cycle away from `c` (US2 at
//! `e`), reverses pre-emptively at `u` (rule U2e — the first node to see
//! `s` sheltered behind the constraint vertex `e` with the reversing
//! rank orientation), retraces to `c` and descends: route `n + 2k - 6`
//! versus `k + 1`, i.e. dilation `6 - 48/(n + 4)`.

use local_routing::engine::{self, RunOptions};
use local_routing::LocalRouter;
use locality_graph::{Graph, GraphBuilder, Label, NodeId};

/// A constructed tight instance.
#[derive(Clone, Debug)]
pub struct TightInstance {
    /// The graph.
    pub graph: Graph,
    /// Origin.
    pub s: NodeId,
    /// Destination.
    pub t: NodeId,
    /// The locality parameter the instance is tight for (`n / 4`).
    pub k: u32,
    /// The route length the paper predicts for the target algorithm.
    pub predicted_route: usize,
    /// The shortest-path length.
    pub shortest: u32,
}

impl TightInstance {
    /// The dilation the paper predicts.
    pub fn predicted_dilation(&self) -> f64 {
        self.predicted_route as f64 / self.shortest as f64
    }

    /// Runs `router` on the instance and returns `(route length,
    /// dilation)`; panics if the message is not delivered.
    pub fn measure<R: LocalRouter + ?Sized>(&self, router: &R) -> (usize, f64) {
        let run = engine::route(
            &self.graph,
            self.k,
            router,
            self.s,
            self.t,
            &RunOptions::default(),
        );
        assert!(
            run.status.is_delivered(),
            "{} failed on tight instance: {:?}",
            router.name(),
            run.status
        );
        (run.hops(), run.dilation().expect("s != t"))
    }
}

/// Builds the Fig. 13 instance on `n` nodes (`n` divisible by 4,
/// `n >= 16`), tight for Algorithm 1 at `k = n/4`.
///
/// # Panics
///
/// Panics if `n % 4 != 0` or `n < 16`.
pub fn fig13(n: usize) -> TightInstance {
    assert!(n.is_multiple_of(4) && n >= 16, "fig13 needs n = 4k >= 16");
    let k = (n / 4) as u32;
    let cycle_len = n - k as usize - 1;
    let mut b = GraphBuilder::new();
    let mut next = 0u32;
    let mut fresh = |b: &mut GraphBuilder| {
        let id = b.add_node(Label(next)).expect("sequential labels");
        next += 1;
        id
    };
    // Cycle in clockwise label order: s(0), w1(1), c(2), w2(3), ...
    let s = fresh(&mut b);
    let w1 = fresh(&mut b);
    let c = fresh(&mut b);
    b.add_edge(s, w1).expect("simple");
    b.add_edge(w1, c).expect("simple");
    let mut prev = c;
    for _ in 0..(cycle_len - 3) {
        let x = fresh(&mut b);
        b.add_edge(prev, x).expect("simple");
        prev = x;
    }
    b.add_edge(prev, s).expect("simple");
    // Pendant of length k + 1 from c to t.
    let mut prev = c;
    let mut t = c;
    for _ in 0..(k + 1) {
        t = fresh(&mut b);
        b.add_edge(prev, t).expect("simple");
        prev = t;
    }
    let graph = b.build();
    assert_eq!(graph.node_count(), n);
    TightInstance {
        graph,
        s,
        t,
        k,
        predicted_route: 2 * n - k as usize - 3,
        shortest: k + 3,
    }
}

/// Builds the Fig. 17 instance on `n` nodes (`n` divisible by 4,
/// `n >= 28`), tight for Algorithm 1B at `k = n/4`.
///
/// # Panics
///
/// Panics if `n % 4 != 0` or `n < 28`.
pub fn fig17(n: usize) -> TightInstance {
    assert!(n.is_multiple_of(4) && n >= 28, "fig17 needs n = 4k >= 28");
    let k = n / 4;
    let mut b = GraphBuilder::new();
    let mut next = 0u32;
    let mut fresh = |b: &mut GraphBuilder| {
        let id = b.add_node(Label(next)).expect("sequential labels");
        next += 1;
        id
    };
    // Label order encodes every rank constraint:
    //   s = 0, d = 1 (so {s, d} has globally minimal rank and goes
    //   dormant), then e, x1..x4, c, y1..y_{2k-6}, u, branch a.., pendant
    //   g2..t.
    let s = fresh(&mut b);
    let d = fresh(&mut b);
    let e = fresh(&mut b);
    let mut xs = Vec::new();
    for _ in 0..4 {
        xs.push(fresh(&mut b));
    }
    let c = fresh(&mut b);
    let mut ys = Vec::new();
    for _ in 0..(2 * k - 6) {
        ys.push(fresh(&mut b));
    }
    let u = fresh(&mut b);
    // Main cycle e - x1..x4 - c - y1..y_{2k-6} - u - e (length 2k + 1).
    let mut ring = vec![e];
    ring.extend(&xs);
    ring.push(c);
    ring.extend(&ys);
    ring.push(u);
    for w in ring.windows(2) {
        b.add_edge(w[0], w[1]).expect("simple");
    }
    b.add_edge(u, e).expect("simple");
    // Branch of k - 2 edges from e to s (interior nodes a, ...).
    let mut prev = e;
    for _ in 0..(k - 3) {
        let x = fresh(&mut b);
        b.add_edge(prev, x).expect("simple");
        prev = x;
    }
    b.add_edge(prev, s).expect("simple");
    // Pendant of k + 1 edges from c to t, first node d.
    b.add_edge(c, d).expect("simple");
    let mut prev = d;
    let mut t = d;
    for _ in 0..k {
        t = fresh(&mut b);
        b.add_edge(prev, t).expect("simple");
        prev = t;
    }
    // The dormant shortcut.
    b.add_edge(s, d).expect("simple");
    let graph = b.build();
    assert_eq!(graph.node_count(), n);
    TightInstance {
        graph,
        s,
        t,
        k: k as u32,
        predicted_route: n + 2 * k - 6,
        shortest: k as u32 + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_routing::{Alg1, Alg1B};
    use locality_graph::traversal;

    #[test]
    fn fig13_structure() {
        let inst = fig13(32);
        assert_eq!(inst.k, 8);
        assert!(traversal::is_connected(&inst.graph));
        assert_eq!(
            traversal::distance(&inst.graph, inst.s, inst.t),
            Some(inst.shortest)
        );
    }

    #[test]
    fn fig13_realises_paper_route_for_alg1() {
        for n in [16usize, 32, 48] {
            let inst = fig13(n);
            let (hops, dilation) = inst.measure(&Alg1);
            assert_eq!(hops, inst.predicted_route, "n={n}");
            let paper = 7.0 - 96.0 / (n as f64 + 12.0);
            assert!(
                (dilation - paper).abs() < 1e-9,
                "n={n}: {dilation} vs {paper}"
            );
        }
    }

    #[test]
    fn fig13_dilation_approaches_seven() {
        let inst = fig13(96);
        let (_, dilation) = inst.measure(&Alg1);
        assert!(dilation > 6.1, "dilation {dilation}");
        assert!(dilation < 7.0);
    }

    #[test]
    fn alg1b_beats_alg1_on_fig13() {
        // The pre-emptive reversal rules must shorten the route here.
        let inst = fig13(32);
        let (hops1, _) = inst.measure(&Alg1);
        let (hops1b, d1b) = inst.measure(&Alg1B);
        assert!(hops1b <= hops1);
        assert!(d1b <= 6.0 + 1e-9, "Alg 1B dilation {d1b} above its bound");
    }

    #[test]
    fn fig17_structure() {
        let inst = fig17(28);
        assert_eq!(inst.k, 7);
        assert!(traversal::is_connected(&inst.graph));
        assert_eq!(
            traversal::distance(&inst.graph, inst.s, inst.t),
            Some(inst.shortest)
        );
    }

    #[test]
    fn fig17_realises_paper_route_for_alg1b() {
        for n in [28usize, 40, 64] {
            let inst = fig17(n);
            let (hops, dilation) = inst.measure(&Alg1B);
            assert_eq!(hops, inst.predicted_route, "n={n}");
            let paper = 6.0 - 48.0 / (n as f64 + 4.0);
            assert!(
                (dilation - paper).abs() < 1e-9,
                "n={n}: {dilation} vs {paper}"
            );
        }
    }

    #[test]
    fn fig17_u2e_fires_exactly_at_u() {
        // In fig17(n), node u (id 2k+2) is the unique node where the
        // refined rule U2e pre-emptively reverses: Algorithm 1B sends
        // the message back the way it came, Algorithm 1 passes through.
        use local_routing::{LocalView, Packet};
        let n = 28;
        let k = 7u32;
        let inst = fig17(n);
        let u = locality_graph::NodeId(2 * k + 2);
        let w = locality_graph::NodeId(2 * k + 1); // far-side neighbour
        let view = LocalView::extract(&inst.graph, u, k);
        let packet = Packet::new(
            inst.graph.label(inst.s),
            inst.graph.label(inst.t),
            Some(inst.graph.label(w)),
        );
        let plain = Alg1.decide(&packet, &view).unwrap();
        let refined = Alg1B.decide(&packet, &view).unwrap();
        use local_routing::LocalRouter;
        assert_eq!(plain, inst.graph.label(locality_graph::NodeId(2))); // through to e
        assert_eq!(refined, inst.graph.label(w)); // pre-emptive reversal
                                                  // Heading away from s, both agree (plain pass-through).
        let packet = Packet::new(
            inst.graph.label(inst.s),
            inst.graph.label(inst.t),
            Some(inst.graph.label(locality_graph::NodeId(2))),
        );
        assert_eq!(
            Alg1.decide(&packet, &view).unwrap(),
            Alg1B.decide(&packet, &view).unwrap()
        );
    }

    #[test]
    fn traces_reproduce_the_papers_route_narrations() {
        // Lemma 8's narration for fig13: S2 fires at s twice (initial
        // send and the bounce), U3 at c on both passes, U2 everywhere
        // else on the cycle, case-1 down the pendant.
        let inst = fig13(32);
        let traced = local_routing::engine::route_traced(
            &inst.graph,
            inst.k,
            &Alg1,
            inst.s,
            inst.t,
            &Default::default(),
        );
        assert!(traced.report.status.is_delivered());
        assert_eq!(traced.rules.iter().filter(|r| **r == "S2").count(), 2);
        assert_eq!(traced.rules.iter().filter(|r| **r == "U3").count(), 2);
        assert!(traced.rules.contains(&"case-1"));
        assert!(!traced.rules.iter().any(|r| r.starts_with("US")));

        // Lemma 16's narration for fig17: S1 at s, US1 along the branch,
        // US2 at e, U2e exactly once (the pre-emptive reversal at u),
        // U3 at c, case-1 down to t.
        let inst = fig17(40);
        let traced = local_routing::engine::route_traced(
            &inst.graph,
            inst.k,
            &Alg1B,
            inst.s,
            inst.t,
            &Default::default(),
        );
        assert!(traced.report.status.is_delivered());
        assert_eq!(traced.rules[0], "S1");
        assert!(traced.rules.contains(&"US1"));
        assert!(traced.rules.contains(&"US2"));
        assert_eq!(traced.rules.iter().filter(|r| **r == "U2e").count(), 1);
        assert!(traced.rules.contains(&"U3"));
        assert_eq!(*traced.rules.last().unwrap(), "case-1");
    }

    #[test]
    fn fig17_still_delivered_under_label_perturbation() {
        // Swapping the labels that drive the U2e rank comparison flips
        // which refined case applies, but delivery (and the dilation
        // bound) must survive any relabelling.
        use local_routing::LocalRouter;
        use locality_graph::{permute, Label};
        let inst = fig17(28);
        let n = inst.graph.node_count();
        // Swap the labels of x1 (id 3) and u (id 16).
        let mut labels: Vec<Label> = (0..n as u32).map(Label).collect();
        labels.swap(3, 16);
        let g = permute::relabel(&inst.graph, &labels);
        for router in [&Alg1 as &dyn LocalRouter, &Alg1B] {
            let run = local_routing::engine::route(
                &g,
                inst.k,
                &router,
                inst.s,
                inst.t,
                &Default::default(),
            );
            assert!(run.status.is_delivered(), "{}", router.name());
            let d = run.dilation().unwrap();
            let bound = if router.name().ends_with("1b") {
                6.0
            } else {
                7.0
            };
            assert!(d <= bound + 1e-9, "{}: {d}", router.name());
        }
    }

    #[test]
    fn fig17_dilation_approaches_six() {
        let inst = fig17(96);
        let (_, dilation) = inst.measure(&Alg1B);
        assert!(dilation > 5.5, "dilation {dilation}");
        assert!(dilation < 6.0);
    }
}
