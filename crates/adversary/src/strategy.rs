//! The strategy routers the impossibility proofs quantify over.
//!
//! Lemma 1 shows that any successful predecessor-aware algorithm, at a
//! node whose local components are all independent and active and whose
//! view contains neither `s` nor `t`, must implement a *circular
//! permutation* of the node's neighbours. On the Theorem 1/2 families
//! every node except one hub has degree ≤ 2 (where the circular
//! permutation is forced), so an algorithm's entire behaviour collapses
//! to its choice of circular permutation at the hub (plus, for Theorem
//! 2, the initial direction). [`StrategyRouter`] realises exactly one
//! such choice, letting tests and benches enumerate all of them —
//! regenerating Tables 3 and 4.

use local_routing::{Awareness, LocalRouter, LocalView, Packet, RoutingError};
use locality_graph::{Label, NodeId};

/// A k-local, predecessor-aware router that behaves canonically
/// everywhere except at one *hub* node, where it applies a chosen
/// circular permutation (and, if the hub is the origin, a chosen initial
/// direction).
///
/// Canonical behaviour: if the destination is in view, step along a
/// shortest path; otherwise pass through (degree 2), bounce (degree 1),
/// or apply the label-order circular permutation (degree ≥ 3, non-hub).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyRouter {
    hub: Label,
    /// `cycle[i]` is the position (in label order) of the neighbour the
    /// message is forwarded to when it arrives from the neighbour at
    /// position `i`. Must be a circular permutation of `0..degree(hub)`.
    cycle: Vec<usize>,
    /// Initial direction (position in label order) used when the hub is
    /// the origin and `v = ⊥`.
    initial: usize,
}

impl StrategyRouter {
    /// Builds a strategy. `cycle_order` lists neighbour positions in the
    /// order the permutation cycles through them, e.g. `[0, 2, 1, 3]`
    /// means `(P1 P3 P2 P4)`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_order` is not a permutation of `0..len`.
    pub fn new(hub: Label, cycle_order: &[usize], initial: usize) -> StrategyRouter {
        let d = cycle_order.len();
        let mut seen = vec![false; d];
        for &i in cycle_order {
            assert!(i < d && !seen[i], "cycle_order must be a permutation");
            seen[i] = true;
        }
        // Convert the cycle notation to a successor table.
        let mut cycle = vec![0usize; d];
        for (idx, &pos) in cycle_order.iter().enumerate() {
            cycle[pos] = cycle_order[(idx + 1) % d];
        }
        StrategyRouter {
            hub,
            cycle,
            initial,
        }
    }

    /// All circular permutations of `d` elements that fix the starting
    /// element first (the `(d-1)!` distinct routing strategies of the
    /// paper's tables), as cycle orders beginning with position 0.
    pub fn all_cycle_orders(d: usize) -> Vec<Vec<usize>> {
        fn permute(rest: &mut Vec<usize>, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if rest.is_empty() {
                out.push(acc.clone());
                return;
            }
            for i in 0..rest.len() {
                let x = rest.remove(i);
                acc.push(x);
                permute(rest, acc, out);
                acc.pop();
                rest.insert(i, x);
            }
        }
        let mut out = Vec::new();
        let mut rest: Vec<usize> = (1..d).collect();
        permute(&mut rest, &mut vec![0], &mut out);
        out
    }
}

impl LocalRouter for StrategyRouter {
    fn name(&self) -> &'static str {
        "strategy-router"
    }

    fn awareness(&self) -> Awareness {
        Awareness::ORIGIN_OBLIVIOUS
    }

    fn min_locality(&self, _n: usize) -> u32 {
        1
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        if let Some(t_node) = view.node_by_label(packet.target) {
            if t_node == view.center() {
                return Err(RoutingError::ProtocolViolation(
                    "message already delivered".into(),
                ));
            }
            if let Some(step) = view.shortest_step_toward(t_node) {
                return Ok(view.label(step));
            }
        }
        let mut nbrs: Vec<NodeId> = view.center_neighbors().to_vec();
        if nbrs.is_empty() {
            return Err(RoutingError::Unroutable(packet.target));
        }
        view.sort_by_label(&mut nbrs);
        let v_pos = packet
            .predecessor
            .and_then(|l| view.node_by_label(l))
            .and_then(|p| nbrs.iter().position(|&x| x == p));
        let next = if view.center_label() == self.hub {
            match v_pos {
                None => nbrs[self.initial.min(nbrs.len() - 1)],
                Some(i) => nbrs[*self.cycle.get(i).unwrap_or(&0)],
            }
        } else {
            match v_pos {
                None => nbrs[0],
                Some(i) => nbrs[(i + 1) % nbrs.len()],
            }
        };
        Ok(view.label(next))
    }
}

/// A predecessor-oblivious router defined by a fixed direction at every
/// node: when the destination is out of view, node `u` always forwards
/// to its highest-label neighbour if `arrow(u)` is true, lowest
/// otherwise. This captures the full space of deterministic
/// predecessor-oblivious behaviours on a path (Theorem 3): at each node
/// the decision is a constant.
#[derive(Clone, Debug)]
pub struct ArrowRouter {
    arrows: std::collections::BTreeMap<Label, bool>,
    /// Default direction for labels missing from the map.
    pub default_high: bool,
}

impl ArrowRouter {
    /// Builds an arrow router from explicit per-label directions.
    pub fn new(arrows: std::collections::BTreeMap<Label, bool>, default_high: bool) -> ArrowRouter {
        ArrowRouter {
            arrows,
            default_high,
        }
    }
}

impl LocalRouter for ArrowRouter {
    fn name(&self) -> &'static str {
        "arrow-router"
    }

    fn awareness(&self) -> Awareness {
        Awareness::PREDECESSOR_OBLIVIOUS
    }

    fn min_locality(&self, _n: usize) -> u32 {
        1
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        if let Some(t_node) = view.node_by_label(packet.target) {
            if t_node == view.center() {
                return Err(RoutingError::ProtocolViolation(
                    "message already delivered".into(),
                ));
            }
            if let Some(step) = view.shortest_step_toward(t_node) {
                return Ok(view.label(step));
            }
        }
        let mut nbrs: Vec<NodeId> = view.center_neighbors().to_vec();
        if nbrs.is_empty() {
            return Err(RoutingError::Unroutable(packet.target));
        }
        view.sort_by_label(&mut nbrs);
        let high = *self
            .arrows
            .get(&view.center_label())
            .unwrap_or(&self.default_high);
        let pick = if high {
            *nbrs.last().expect("nonempty")
        } else {
            nbrs[0]
        };
        Ok(view.label(pick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_routing::engine;
    use locality_graph::generators;

    #[test]
    fn cycle_orders_enumeration_counts() {
        assert_eq!(StrategyRouter::all_cycle_orders(3).len(), 2);
        assert_eq!(StrategyRouter::all_cycle_orders(4).len(), 6);
        for order in StrategyRouter::all_cycle_orders(4) {
            assert_eq!(order[0], 0);
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation() {
        StrategyRouter::new(Label(0), &[0, 0, 1], 0);
    }

    #[test]
    fn successor_table_matches_cycle_notation() {
        // (P1 P3 P2 P4): from position 0 go to 2, from 2 to 1, from 1 to
        // 3, from 3 to 0.
        let r = StrategyRouter::new(Label(99), &[0, 2, 1, 3], 0);
        assert_eq!(r.cycle, vec![2, 3, 1, 0]);
    }

    #[test]
    fn pass_through_on_paths() {
        // With the hub absent from the graph, the router is the plain
        // right-hand rule and delivers on trees.
        let g = generators::path(8);
        let r = StrategyRouter::new(Label(999), &[0], 0);
        let m = engine::delivery_matrix(&g, 2, &r);
        assert!(m.all_delivered());
    }

    #[test]
    fn arrow_router_sweeps_to_its_direction() {
        let g = generators::path(10);
        let high = ArrowRouter::new(Default::default(), true);
        let m = engine::delivery_matrix(&g, 2, &high);
        // Always-up delivers exactly the pairs with t within k of s's
        // sweep... at least, every pair with t > s must be delivered.
        for (s, t, _) in &m.failures {
            assert!(t < s, "always-high must deliver upward pairs ({s},{t})");
        }
    }
}
