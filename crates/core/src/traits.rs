//! The `LocalRouter` trait: the routing-function interface.

use locality_graph::Label;

use crate::error::RoutingError;
use crate::model::{Awareness, Packet};
use crate::view::LocalView;

/// A deterministic, memoryless, stateless k-local routing algorithm —
/// the paper's routing function `f(s, t, u, v, G_k(u))` (§2.1).
///
/// Implementations must be **pure**: the decision may depend only on the
/// (already masked) packet and the view. The engine exploits purity for
/// exact loop detection — if the same `(u, v)` state recurs, the run
/// provably never terminates.
///
/// `Sync` is a supertrait: routers are immutable decision tables, and
/// requiring it here lets the engine and the adversary fan any router —
/// including `dyn LocalRouter` trait objects — out across threads.
pub trait LocalRouter: Sync {
    /// Human-readable algorithm name, used in reports and benches.
    fn name(&self) -> &'static str;

    /// Which optional inputs the algorithm consumes. The engine masks
    /// the rest, so an "oblivious" router physically cannot cheat.
    fn awareness(&self) -> Awareness;

    /// The smallest `k` for which the algorithm guarantees delivery on
    /// every connected graph with `n` nodes (the paper's threshold
    /// `T(n)`, Table 1). Running below this value may fail.
    fn min_locality(&self, n: usize) -> u32;

    /// Chooses the neighbour of the view's centre to forward to,
    /// identified by label.
    ///
    /// # Errors
    ///
    /// Returns a [`RoutingError`] when the view violates the algorithm's
    /// structural preconditions — the signature of `k` being below
    /// [`min_locality`](Self::min_locality).
    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError>;

    /// Like [`decide`](Self::decide), but also names the rule that fired
    /// (e.g. `"case-1"`, `"S2"`, `"U3"`, `"U2e"`), for tracing and
    /// diagnostics. The default reports `"?"`.
    fn decide_explained(
        &self,
        packet: &Packet,
        view: &LocalView,
    ) -> Result<(Label, &'static str), RoutingError> {
        self.decide(packet, view).map(|l| (l, "?"))
    }
}

/// Blanket impl so `&R` is accepted wherever a router is expected.
impl<R: LocalRouter + ?Sized> LocalRouter for &R {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn awareness(&self) -> Awareness {
        (**self).awareness()
    }

    fn min_locality(&self, n: usize) -> u32 {
        (**self).min_locality(n)
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        (**self).decide(packet, view)
    }

    fn decide_explained(
        &self,
        packet: &Packet,
        view: &LocalView,
    ) -> Result<(Label, &'static str), RoutingError> {
        (**self).decide_explained(packet, view)
    }
}

/// Blanket impl so boxed (dyn) routers are accepted too.
impl<R: LocalRouter + ?Sized> LocalRouter for Box<R> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn awareness(&self) -> Awareness {
        (**self).awareness()
    }

    fn min_locality(&self, n: usize) -> u32 {
        (**self).min_locality(n)
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        (**self).decide(packet, view)
    }

    fn decide_explained(
        &self,
        packet: &Packet,
        view: &LocalView,
    ) -> Result<(Label, &'static str), RoutingError> {
        (**self).decide_explained(packet, view)
    }
}

/// `ceil(n / d)` as `u32` — the usual form of the paper's thresholds.
pub(crate) fn ceil_div(n: usize, d: usize) -> u32 {
    n.div_ceil(d) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_matches_paper_thresholds() {
        assert_eq!(ceil_div(16, 4), 4);
        assert_eq!(ceil_div(17, 4), 5);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(10, 3), 4);
    }

    #[test]
    fn reference_router_is_a_router() {
        fn assert_router<R: LocalRouter>(_: &R) {}
        let alg = crate::Alg3;
        assert_router(&alg);
        assert_router(&&alg);
    }
}
