//! The routing-function model: awareness flags and the per-hop packet.

use std::fmt;

use locality_graph::Label;

/// Which of the optional inputs of `f(s, t, u, v, G_k(u))` a routing
/// algorithm receives (§2.1).
///
/// The engine *masks* the corresponding [`Packet`] fields before calling
/// an oblivious router, so obliviousness is enforced rather than merely
/// promised.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Awareness {
    /// Whether the algorithm learns the origin node `s`.
    pub origin: bool,
    /// Whether the algorithm learns the incoming port `v`.
    pub predecessor: bool,
}

impl Awareness {
    /// Origin-aware and predecessor-aware (Algorithm 1 / 1B).
    pub const FULL: Awareness = Awareness {
        origin: true,
        predecessor: true,
    };
    /// Origin-oblivious, predecessor-aware (Algorithm 2).
    pub const ORIGIN_OBLIVIOUS: Awareness = Awareness {
        origin: false,
        predecessor: true,
    };
    /// Origin-aware, predecessor-oblivious (Corollary 5 setting).
    pub const PREDECESSOR_OBLIVIOUS: Awareness = Awareness {
        origin: true,
        predecessor: false,
    };
    /// Origin-oblivious and predecessor-oblivious (Algorithm 3).
    pub const OBLIVIOUS: Awareness = Awareness {
        origin: false,
        predecessor: false,
    };
}

impl fmt::Display for Awareness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-origin/{}-predecessor",
            if self.origin { "aware" } else { "oblivious" },
            if self.predecessor {
                "aware"
            } else {
                "oblivious"
            },
        )
    }
}

/// The per-hop inputs to a local routing function, already masked
/// according to the router's [`Awareness`].
///
/// Everything is expressed in **labels**: labels are the only names a
/// local algorithm may rely on (§1.1). The current node `u` is implicit —
/// it is the centre of the [`LocalView`](crate::LocalView) passed
/// alongside the packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Label of the origin node `s`, or `None` when masked
    /// (origin-oblivious router).
    pub origin: Option<Label>,
    /// Label of the destination node `t`.
    pub target: Label,
    /// Label of the neighbour that forwarded the message here; `None` on
    /// the very first hop (the paper's `v = ⊥`) or when masked
    /// (predecessor-oblivious router).
    pub predecessor: Option<Label>,
}

impl Packet {
    /// Builds an unmasked packet.
    pub fn new(origin: Label, target: Label, predecessor: Option<Label>) -> Packet {
        Packet {
            origin: Some(origin),
            target,
            predecessor,
        }
    }

    /// Returns a copy with fields hidden per `awareness`.
    pub fn masked(mut self, awareness: Awareness) -> Packet {
        if !awareness.origin {
            self.origin = None;
        }
        if !awareness.predecessor {
            self.predecessor = None;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_exactly_the_configured_fields() {
        let p = Packet::new(Label(1), Label(2), Some(Label(3)));
        let full = p.masked(Awareness::FULL);
        assert_eq!(full, p);
        let oo = p.masked(Awareness::ORIGIN_OBLIVIOUS);
        assert_eq!(oo.origin, None);
        assert_eq!(oo.predecessor, Some(Label(3)));
        let po = p.masked(Awareness::PREDECESSOR_OBLIVIOUS);
        assert_eq!(po.origin, Some(Label(1)));
        assert_eq!(po.predecessor, None);
        let both = p.masked(Awareness::OBLIVIOUS);
        assert_eq!(both.origin, None);
        assert_eq!(both.predecessor, None);
        assert_eq!(both.target, Label(2));
    }

    #[test]
    fn awareness_display_names_both_axes() {
        assert_eq!(
            Awareness::ORIGIN_OBLIVIOUS.to_string(),
            "oblivious-origin/aware-predecessor"
        );
    }
}
