//! The routing-oracle artifact tier: precompute every node's
//! [`LocalView`] once, serve it forever.
//!
//! The simulator's provisioning cost is dominated by per-node BFS
//! extraction of `G_k(u)` plus the derived first-step table — work
//! that is a pure function of `(G, k)` and therefore wasted every time
//! a deployment restarts. A [`ViewArtifact`] moves that work offline:
//! an **arena-layout blob** holding one encoded payload per node (CSR
//! view, slot-aligned labels, centre distances, min-label first-step
//! table) behind a fixed-width offset index, so loading is one read
//! plus an index fixup and materialising any single view is a linear
//! decode with no graph traversal at all.
//!
//! # Format (version 1)
//!
//! ```text
//! magic     4 bytes   "LRVO"
//! version   u16 le    1
//! k         u32 le    locality parameter of every payload
//! n         u32 le    node count (payload count)
//! edges     u64 le    edge count of the source graph (shape guard)
//! arena_len u64 le    total payload bytes
//! index     n × (offset u64 le, len u32 le)   into the arena
//! arena     arena_len bytes of concatenated payloads
//! checksum  u64 le    word-wise FNV-1a of every preceding byte
//! ```
//!
//! Versioning policy: the magic identifies the file family, the
//! version gates the payload layout; readers reject any version they
//! do not know ([`OracleError::UnsupportedVersion`]) rather than
//! guessing. The trailing checksum — [`codec::fnv1a_wide`], FNV-1a
//! applied to 64-bit words so the load-time scan costs a fraction of
//! the byte-wise reference — covers header, index and arena, so a
//! single flipped bit anywhere surfaces as
//! [`OracleError::ChecksumMismatch`] before any payload is trusted.
//!
//! Decoding never panics: every structural invariant is validated and
//! violations surface as a typed [`OracleError`]. Byte identity is a
//! load-bearing property — building the same `(G, k)` twice, at any
//! thread count, produces identical artifacts, and a decoded view
//! re-encodes to exactly its original payload.

use std::fmt;
use std::thread;

use locality_graph::codec::{self, CodecError, Reader, Writer};
use locality_graph::{Graph, Label, NodeId};

use crate::view::LocalView;

/// File magic of a view artifact.
pub const MAGIC: [u8; 4] = *b"LRVO";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;
/// Fixed header length: magic, version, k, n, edges, arena_len.
const HEADER_LEN: usize = 4 + 2 + 4 + 4 + 8 + 8;
/// Bytes per index entry: offset u64 + len u32.
const INDEX_ENTRY_LEN: usize = 12;
/// Trailing checksum length.
const CHECKSUM_LEN: usize = 8;

/// Why an artifact was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum OracleError {
    /// A primitive decode failed (truncation, varint overflow, …).
    Codec(CodecError),
    /// The file does not start with [`MAGIC`].
    BadMagic(
        /// The four bytes actually found.
        [u8; 4],
    ),
    /// The format version is not one this reader understands.
    UnsupportedVersion(
        /// The version stamped in the header.
        u16,
    ),
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// A structural invariant of the artifact was violated.
    Corrupt {
        /// The node whose payload was being decoded, if any.
        node: Option<NodeId>,
        /// Which invariant failed.
        what: &'static str,
    },
    /// The artifact was built for a different node count than the
    /// graph it is being used with.
    NodeCountMismatch {
        /// Node count stamped in the artifact.
        artifact: u32,
        /// Node count of the live graph.
        graph: u32,
    },
    /// The artifact was built for a different edge count (same node
    /// count, different topology).
    EdgeCountMismatch {
        /// Edge count stamped in the artifact.
        artifact: u64,
        /// Edge count of the live graph.
        graph: u64,
    },
    /// The artifact was built for a different locality parameter.
    KMismatch {
        /// `k` stamped in the artifact.
        artifact: u32,
        /// `k` the caller requested.
        requested: u32,
    },
    /// The requested node has no payload in this artifact.
    UnknownNode(NodeId),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Codec(e) => write!(f, "artifact decode failed: {e}"),
            OracleError::BadMagic(m) => write!(f, "not a view artifact (magic {m:02x?})"),
            OracleError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v} (reader knows {FORMAT_VERSION})"
                )
            }
            OracleError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            OracleError::Corrupt { node, what } => match node {
                Some(u) => write!(f, "artifact payload for node {u} is corrupt: {what}"),
                None => write!(f, "artifact is corrupt: {what}"),
            },
            OracleError::NodeCountMismatch { artifact, graph } => write!(
                f,
                "artifact holds {artifact} nodes but the graph has {graph}"
            ),
            OracleError::EdgeCountMismatch { artifact, graph } => write!(
                f,
                "artifact was built over {artifact} edges but the graph has {graph}"
            ),
            OracleError::KMismatch {
                artifact,
                requested,
            } => write!(f, "artifact was built for k={artifact}, not k={requested}"),
            OracleError::UnknownNode(u) => write!(f, "artifact has no payload for node {u}"),
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for OracleError {
    fn from(e: CodecError) -> OracleError {
        OracleError::Codec(e)
    }
}

/// A versioned, checksummed blob of precomputed [`LocalView`]s for
/// every node of one `(graph, k)` pair.
///
/// The artifact owns its serialised bytes; [`decode_view`] materialises
/// a single node's view from the arena without touching any other
/// payload, which is what makes artifact-backed stores lazy.
///
/// [`decode_view`]: Self::decode_view
#[derive(Clone, Debug)]
pub struct ViewArtifact {
    k: u32,
    node_count: u32,
    graph_edge_count: u64,
    checksum: u64,
    /// Per-node `(offset, len)` into the arena.
    index: Vec<(u64, u32)>,
    /// Byte offset of the arena within `bytes`.
    arena_offset: usize,
    /// The full serialised artifact, checksum included.
    bytes: Vec<u8>,
}

impl ViewArtifact {
    /// Builds the artifact for every node of `graph` at locality `k`,
    /// fanning extraction across the machine's available parallelism
    /// (capped at 8, like the simulator driver). The result is
    /// byte-identical at every thread count.
    pub fn build(graph: &Graph, k: u32) -> ViewArtifact {
        let threads = thread::available_parallelism().map_or(1, |p| p.get().min(8));
        ViewArtifact::build_with_threads(graph, k, threads)
    }

    /// [`build`](Self::build) with an explicit worker count
    /// (`1` = fully sequential).
    pub fn build_with_threads(graph: &Graph, k: u32, threads: usize) -> ViewArtifact {
        let n = graph.node_count();
        let encode_one = |i: usize| -> Vec<u8> {
            let view = LocalView::extract(graph, NodeId(i as u32), k);
            let mut w = Writer::new();
            encode_view(&mut w, &view);
            w.into_bytes()
        };
        // Strided fan-out, same discipline as the simulator driver:
        // worker w takes payloads w, w + W, w + 2W, …; the merge sorts
        // by node index, so the arena order is a pure function of the
        // input.
        let workers = threads.max(1).min(n.max(1));
        let mut payloads: Vec<(usize, Vec<u8>)> = Vec::with_capacity(n);
        if workers <= 1 {
            payloads.extend((0..n).map(|i| (i, encode_one(i))));
        } else {
            let encode_one = &encode_one;
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || -> Vec<(usize, Vec<u8>)> {
                            (w..n)
                                .step_by(workers)
                                .map(|i| (i, encode_one(i)))
                                .collect()
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(part) => payloads.extend(part),
                        Err(cause) => std::panic::resume_unwind(cause),
                    }
                }
            });
        }
        payloads.sort_unstable_by_key(|&(i, _)| i);

        let arena_len: usize = payloads.iter().map(|(_, p)| p.len()).sum();
        let total = HEADER_LEN + n * INDEX_ENTRY_LEN + arena_len + CHECKSUM_LEN;
        let mut w = Writer::new();
        let mut bytes = Vec::with_capacity(total);
        w.put_bytes(&MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u32(k);
        w.put_u32(n as u32);
        w.put_u64(graph.edge_count() as u64);
        w.put_u64(arena_len as u64);
        let mut index: Vec<(u64, u32)> = Vec::with_capacity(n);
        let mut offset: u64 = 0;
        for (_, p) in &payloads {
            index.push((offset, p.len() as u32));
            w.put_u64(offset);
            w.put_u32(p.len() as u32);
            offset += p.len() as u64;
        }
        bytes.extend_from_slice(w.as_bytes());
        let arena_offset = bytes.len();
        for (_, p) in &payloads {
            bytes.extend_from_slice(p);
        }
        let checksum = codec::fnv1a_wide(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        ViewArtifact {
            k,
            node_count: n as u32,
            graph_edge_count: graph.edge_count() as u64,
            checksum,
            index,
            arena_offset,
            bytes,
        }
    }

    /// Parses and validates a serialised artifact: magic, version,
    /// trailing checksum, and index consistency, in that order. The
    /// per-node payloads are *not* decoded here — that happens lazily
    /// in [`decode_view`](Self::decode_view) — so loading cost is the
    /// checksum scan plus the index fixup, independent of view sizes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<ViewArtifact, OracleError> {
        let min = HEADER_LEN + CHECKSUM_LEN;
        if bytes.len() < min {
            return Err(OracleError::Codec(CodecError::Truncated {
                at: bytes.len(),
            }));
        }
        let mut r = Reader::new(&bytes);
        let magic: [u8; 4] = r
            .take(4)?
            .try_into()
            .map_err(|_| OracleError::Codec(CodecError::Truncated { at: 0 }))?;
        if magic != MAGIC {
            return Err(OracleError::BadMagic(magic));
        }
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(OracleError::UnsupportedVersion(version));
        }
        let body_len = bytes.len() - CHECKSUM_LEN;
        let stored = {
            let mut tail = Reader::new(&bytes);
            let _ = tail.take(body_len)?;
            tail.u64()?
        };
        let computed = match bytes.get(..body_len) {
            Some(body) => codec::fnv1a_wide(body),
            None => return Err(OracleError::Codec(CodecError::Truncated { at: body_len })),
        };
        if stored != computed {
            return Err(OracleError::ChecksumMismatch { stored, computed });
        }
        let k = r.u32()?;
        let node_count = r.u32()?;
        let graph_edge_count = r.u64()?;
        let arena_len = r.u64()?;
        let n = node_count as usize;
        let expected = (HEADER_LEN as u64)
            .checked_add(n as u64 * INDEX_ENTRY_LEN as u64)
            .and_then(|v| v.checked_add(arena_len))
            .and_then(|v| v.checked_add(CHECKSUM_LEN as u64));
        if expected != Some(bytes.len() as u64) {
            return Err(OracleError::Corrupt {
                node: None,
                what: "file length disagrees with node count and arena length",
            });
        }
        let mut index: Vec<(u64, u32)> = Vec::with_capacity(n);
        for i in 0..n {
            let off = r.u64()?;
            let len = r.u32()?;
            let end = off.checked_add(u64::from(len));
            if end.is_none() || end > Some(arena_len) {
                return Err(OracleError::Corrupt {
                    node: Some(NodeId(i as u32)),
                    what: "index entry reaches past the arena",
                });
            }
            index.push((off, len));
        }
        let arena_offset = r.position();
        Ok(ViewArtifact {
            k,
            node_count,
            graph_edge_count,
            checksum: stored,
            index,
            arena_offset,
            bytes,
        })
    }

    /// The serialised artifact, checksum included.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The locality parameter every payload was extracted at.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of per-node payloads.
    #[inline]
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Edge count of the graph the artifact was built over.
    #[inline]
    pub fn graph_edge_count(&self) -> u64 {
        self.graph_edge_count
    }

    /// The FNV-1a checksum stamped in the trailer.
    #[inline]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Checks that this artifact describes `graph` at locality `k`:
    /// same `k`, same node count, same edge count. This is a shape
    /// guard, not a full isomorphism check — the chaos byte-identity
    /// gate covers behavioural equality end to end.
    pub fn ensure_matches(&self, graph: &Graph, k: u32) -> Result<(), OracleError> {
        if self.k != k {
            return Err(OracleError::KMismatch {
                artifact: self.k,
                requested: k,
            });
        }
        if self.node_count as usize != graph.node_count() {
            return Err(OracleError::NodeCountMismatch {
                artifact: self.node_count,
                graph: graph.node_count() as u32,
            });
        }
        if self.graph_edge_count != graph.edge_count() as u64 {
            return Err(OracleError::EdgeCountMismatch {
                artifact: self.graph_edge_count,
                graph: graph.edge_count() as u64,
            });
        }
        Ok(())
    }

    /// Materialises node `u`'s view from the arena.
    ///
    /// Decoding validates every structural invariant (membership of
    /// the centre, slot alignment, distance bounds, step-table slots)
    /// before any panicking constructor runs, so corrupt payloads come
    /// back as [`OracleError`], never a panic.
    pub fn decode_view(&self, u: NodeId) -> Result<LocalView, OracleError> {
        let Some(&(off, len)) = self.index.get(u.index()) else {
            return Err(OracleError::UnknownNode(u));
        };
        let start = self.arena_offset + off as usize;
        let Some(payload) = self.bytes.get(start..start + len as usize) else {
            return Err(OracleError::Corrupt {
                node: Some(u),
                what: "index entry reaches past the file",
            });
        };
        decode_view_payload(payload, u, self.k, self.node_count)
    }
}

/// Serialises one view: centre, CSR subgraph, slot-aligned labels and
/// distances, then the first-step table as slot + 1 (0 = none). The
/// table is forced before encoding so artifact consumers never pay the
/// step BFS.
pub(crate) fn encode_view(w: &mut Writer, view: &LocalView) {
    let raw = view.raw();
    w.put_varint(u64::from(view.center().0));
    codec::encode_subgraph(w, raw);
    for &l in view.labels() {
        w.put_varint(u64::from(l.value()));
    }
    for &x in raw.node_slice() {
        w.put_varint(u64::from(view.dist_from_center(x).unwrap_or(0)));
    }
    for &s in view.step_table() {
        // The memo already stores the wire encoding (slot + 1, 0 =
        // none), so the table serialises verbatim.
        w.put_varint(u64::from(s));
    }
}

/// Decodes one payload, validating it belongs to `(expect_center, k)`
/// in an artifact of `node_count` nodes.
fn decode_view_payload(
    payload: &[u8],
    expect_center: NodeId,
    k: u32,
    node_count: u32,
) -> Result<LocalView, OracleError> {
    let corrupt = |what: &'static str| OracleError::Corrupt {
        node: Some(expect_center),
        what,
    };
    let mut r = Reader::new(payload);
    let center_raw = r.varint()?;
    if center_raw != u64::from(expect_center.0) {
        return Err(corrupt("payload centre disagrees with index position"));
    }
    let raw = codec::decode_subgraph(&mut r)?;
    if raw.slot_of(expect_center).is_none() {
        return Err(corrupt("centre is not a member of its own view"));
    }
    let members = raw.node_slice();
    if members.iter().any(|m| m.index() >= node_count as usize) {
        return Err(corrupt("view member outside the artifact's node range"));
    }
    let n = members.len();
    let mut labels: Vec<Label> = Vec::with_capacity(n);
    for _ in 0..n {
        let l = r.varint()?;
        let l = u32::try_from(l).map_err(|_| corrupt("label overflows u32"))?;
        labels.push(Label(l));
    }
    // Distances arrive slot-aligned and the view stores them exactly
    // that way, so decoding is one bounded varint per member.
    let mut dists: Vec<u32> = Vec::with_capacity(n);
    for _ in 0..n {
        let d = r.varint()?;
        let d = u32::try_from(d)
            .ok()
            .filter(|&d| d <= k)
            .ok_or_else(|| corrupt("distance exceeds k"))?;
        dists.push(d);
    }
    let center_dist = raw
        .slot_of(expect_center)
        .and_then(|s| dists.get(s).copied());
    if center_dist != Some(0) {
        return Err(corrupt("centre distance is not zero"));
    }
    // Steps stay in their wire encoding (slot + 1, 0 = none); only the
    // slot bound needs checking before the table is trusted.
    let mut steps: Vec<u32> = Vec::with_capacity(n);
    for _ in 0..n {
        let s = r.varint()?;
        let s = u32::try_from(s)
            .ok()
            .filter(|&s| (s as usize) <= n)
            .ok_or_else(|| corrupt("step slot out of bounds"))?;
        steps.push(s);
    }
    r.expect_eof()?;
    Ok(LocalView::from_parts(
        expect_center,
        k,
        raw,
        dists,
        labels,
        steps,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::generators;
    use locality_graph::rng::DetRng;

    fn sample_graph(seed: u64, n: usize) -> Graph {
        generators::random_connected(n, n / 2, &mut DetRng::seed_from_u64(seed))
    }

    /// Behavioural equality of two views: same fingerprint, distances,
    /// step table, and routing structure.
    fn assert_views_equal(a: &LocalView, b: &LocalView, ctx: &str) {
        assert_eq!(a.fingerprint(), b.fingerprint(), "{ctx}: fingerprint");
        assert_eq!(a.raw(), b.raw(), "{ctx}: raw subgraph");
        for &x in a.raw().node_slice() {
            assert_eq!(
                a.dist_from_center(x),
                b.dist_from_center(x),
                "{ctx}: dist of {x}"
            );
            assert_eq!(
                a.shortest_step_toward(x),
                b.shortest_step_toward(x),
                "{ctx}: step toward {x}"
            );
        }
        assert_eq!(
            a.routing_view().dormant,
            b.routing_view().dormant,
            "{ctx}: dormant edges"
        );
    }

    #[test]
    fn decoded_views_match_extraction() {
        let g = sample_graph(11, 20);
        let artifact = ViewArtifact::build(&g, 3);
        assert_eq!(artifact.node_count(), 20);
        for u in g.nodes() {
            let decoded = artifact.decode_view(u).expect("decode");
            let extracted = LocalView::extract(&g, u, 3);
            assert_views_equal(&decoded, &extracted, &format!("node {u}"));
        }
    }

    #[test]
    fn build_is_byte_identical_at_any_thread_count() {
        let g = sample_graph(5, 33);
        let seq = ViewArtifact::build_with_threads(&g, 4, 1);
        for threads in [2, 3, 8] {
            let par = ViewArtifact::build_with_threads(&g, 4, threads);
            assert_eq!(seq.as_bytes(), par.as_bytes(), "threads = {threads}");
        }
    }

    #[test]
    fn round_trip_through_bytes() {
        let g = sample_graph(7, 12);
        let artifact = ViewArtifact::build(&g, 2);
        let loaded = ViewArtifact::from_bytes(artifact.as_bytes().to_vec()).expect("load");
        assert_eq!(loaded.as_bytes(), artifact.as_bytes());
        assert_eq!(loaded.k(), 2);
        assert_eq!(loaded.checksum(), artifact.checksum());
        assert!(loaded.ensure_matches(&g, 2).is_ok());
    }

    #[test]
    fn encode_decode_encode_is_byte_identical() {
        // Property: decoding any payload and re-encoding the resulting
        // view reproduces the payload bit for bit, over DetRng graphs.
        for seed in 0..6u64 {
            let n = 8 + (seed as usize) * 7;
            let g = sample_graph(seed, n);
            let k = 2 + (seed as u32) % 3;
            let artifact = ViewArtifact::build(&g, k);
            for u in g.nodes() {
                let view = artifact.decode_view(u).expect("decode");
                let mut w = Writer::new();
                encode_view(&mut w, &view);
                let (off, len) = artifact.index[u.index()];
                let start = artifact.arena_offset + off as usize;
                let original = &artifact.bytes[start..start + len as usize];
                assert_eq!(w.as_bytes(), original, "seed {seed} node {u}");
            }
        }
    }

    #[test]
    fn truncated_artifact_is_a_typed_error() {
        let g = sample_graph(3, 9);
        let bytes = ViewArtifact::build(&g, 2).as_bytes().to_vec();
        for cut in 0..bytes.len() {
            let err = ViewArtifact::from_bytes(bytes[..cut].to_vec());
            assert!(err.is_err(), "prefix of length {cut} loaded");
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let g = sample_graph(4, 8);
        let bytes = ViewArtifact::build(&g, 2).as_bytes().to_vec();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                ViewArtifact::from_bytes(corrupt).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn wrong_version_stamp_is_a_typed_error() {
        let g = sample_graph(6, 6);
        let mut bytes = ViewArtifact::build(&g, 2).as_bytes().to_vec();
        bytes[4] = 0x63; // version low byte
        restamp_checksum(&mut bytes);
        assert_eq!(
            ViewArtifact::from_bytes(bytes).unwrap_err(),
            OracleError::UnsupportedVersion(0x63)
        );
    }

    #[test]
    fn wrong_magic_is_a_typed_error() {
        let g = sample_graph(6, 6);
        let mut bytes = ViewArtifact::build(&g, 2).as_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            ViewArtifact::from_bytes(bytes).unwrap_err(),
            OracleError::BadMagic(_)
        ));
    }

    #[test]
    fn wrong_node_count_header_is_a_typed_error() {
        let g = sample_graph(6, 6);
        let mut bytes = ViewArtifact::build(&g, 2).as_bytes().to_vec();
        // node count lives at offset 10 (after magic, version, k).
        bytes[10] = 7;
        restamp_checksum(&mut bytes);
        assert_eq!(
            ViewArtifact::from_bytes(bytes).unwrap_err(),
            OracleError::Corrupt {
                node: None,
                what: "file length disagrees with node count and arena length",
            }
        );
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let g = sample_graph(8, 10);
        let artifact = ViewArtifact::build(&g, 3);
        assert_eq!(
            artifact.ensure_matches(&g, 4).unwrap_err(),
            OracleError::KMismatch {
                artifact: 3,
                requested: 4
            }
        );
        let other = sample_graph(8, 11);
        assert!(matches!(
            artifact.ensure_matches(&other, 3).unwrap_err(),
            OracleError::NodeCountMismatch { .. }
        ));
        let reshaped = sample_graph(9, 10);
        if reshaped.edge_count() != g.edge_count() {
            assert!(matches!(
                artifact.ensure_matches(&reshaped, 3).unwrap_err(),
                OracleError::EdgeCountMismatch { .. }
            ));
        }
    }

    #[test]
    fn unknown_node_is_a_typed_error() {
        let g = sample_graph(2, 5);
        let artifact = ViewArtifact::build(&g, 2);
        assert_eq!(
            artifact.decode_view(NodeId(99)).unwrap_err(),
            OracleError::UnknownNode(NodeId(99))
        );
    }

    #[test]
    fn artifact_backed_store_loads_lazily_and_rebuilds_only_stale() {
        use crate::engine::ViewStore;
        use std::sync::Arc;

        let g = sample_graph(10, 16);
        let artifact = Arc::new(ViewArtifact::build(&g, 3));
        let store = ViewStore::from_artifact(Arc::clone(&artifact));
        assert!(store.is_artifact_backed());
        // Cold lookups decode from the arena — no BFS anywhere.
        for u in g.nodes() {
            store.view(&g, u);
        }
        let s = store.stats();
        assert_eq!(s.misses, 16);
        assert_eq!(s.artifact_loads, 16);
        assert_eq!(s.rebuilds, 0);
        // Warm lookups hit the cache.
        for u in g.nodes() {
            store.view(&g, u);
        }
        assert_eq!(store.stats().hits, 16);
        // Invalidate two nodes: exactly those rebuild from the live
        // graph; every other entry keeps its decoded Arc untouched.
        store.invalidate(NodeId(0));
        store.invalidate(NodeId(1));
        for u in g.nodes() {
            store.view(&g, u);
        }
        let s = store.stats();
        assert_eq!(s.rebuilds, 2, "only the invalidated nodes rebuild");
        assert_eq!(s.artifact_loads, 16, "no extra decodes after the wave");
        // Stale is sticky: a later invalidate + miss re-extracts again
        // rather than serving the outdated payload.
        store.invalidate(NodeId(0));
        store.view(&g, NodeId(0));
        assert_eq!(store.stats().rebuilds, 3);
    }

    #[test]
    fn backed_and_unbacked_stores_serve_identical_views() {
        use crate::engine::ViewStore;
        use std::sync::Arc;

        let g = sample_graph(12, 14);
        let artifact = Arc::new(ViewArtifact::build(&g, 4));
        let bfs = ViewStore::new(4);
        let oracle = ViewStore::from_artifact(artifact);
        for u in g.nodes() {
            let a = bfs.view(&g, u);
            let b = oracle.view(&g, u);
            assert_views_equal(&a, &b, &format!("node {u}"));
        }
    }

    /// Recomputes and restamps the trailing checksum, for tests that
    /// corrupt a header field on purpose and want to get *past* the
    /// checksum gate to the structural validation behind it.
    fn restamp_checksum(bytes: &mut Vec<u8>) {
        let body = bytes.len() - CHECKSUM_LEN;
        let sum = codec::fnv1a_wide(&bytes[..body]);
        bytes.truncate(body);
        bytes.extend_from_slice(&sum.to_le_bytes());
    }
}
