//! Algorithm 1 (§5.1) and Algorithm 1B (Appendix A): origin-aware,
//! predecessor-aware (n/4)-local routing.
//!
//! For `k >= n/4`, every node has active degree at most 3 in `G'_k(u)`
//! (Proposition 1), and a small family of deterministic rules —
//! essentially a right-hand rule over routing edges, with the origin `s`
//! used as a reference point to cut repeating behaviour — guarantees
//! delivery with dilation at most 7 (Theorem 5). Algorithm 1B refines
//! rule U2 to reverse direction *pre-emptively* when the current node can
//! already predict that `s` (rule S2) or a constraint vertex sheltering
//! `s` (rule US2) would bounce the message, improving the dilation bound
//! to 6 (Theorem 6).
//!
//! ### Rule tables
//!
//! The figures carrying the rule diagrams are not reproducible from the
//! text, so the tables below are reconstructed from the constraints the
//! correctness proofs impose (Lemmas 4, 7, 8, 14–16); see DESIGN.md. Let
//! `a < b < c` be the centre's active neighbours ordered by label, `v`
//! the neighbour that delivered the message, and `P` the passive
//! component containing `s` (Case 4 only).
//!
//! | rule | trigger                  | `v=⊥`/from `P` | from `a` | from `b` | from `c` |
//! |------|--------------------------|----------------|----------|----------|----------|
//! | S1   | `u = s`, 1 active        | `a`            | `a`      |          |          |
//! | S2   | `u = s`, 2 active        | `a`            | `b`      | `b`      |          |
//! | S3   | `u = s`, 3 active        | `a`            | `b`      | `c`      | `c`      |
//! | U1   | 1 active                 | `a`            | `a`      |          |          |
//! | U2   | 2 active                 | `a`            | `b`      | `a`      |          |
//! | U3   | 3 active                 | `a`            | `b`      | `c`      | `a`      |
//! | US1  | `s` passive, 1 active    | `a`            | `a`      |          |          |
//! | US2  | `s` passive, 2 active    | `a`            | `b`      | `b`      |          |
//! | US3  | `s` passive, 3 active    | `a`            | `b`      | `c`      | `c`      |
//!
//! The S/US rules share one schema: first try `a`; a return from port
//! `j` advances to port `j + 1`; a return from the *last* port reverses
//! back into it. (At `u = s`, or with `s` sheltered in a passive
//! component, Lemma 1 does not force circularity — and sequential
//! probing is what keeps the origin's ports from being re-used, which a
//! cyclic rule at `s` would do.) The U rules are the label-order
//! circular permutation that Lemma 1 *does* force when neither `s` nor
//! `t` is relevantly placed.
//!
//! (Arrivals from passive components other than `P` cannot occur in a
//! well-formed run — Corollary 4 — and fall back to `a`.)

use locality_graph::components::LocalComponent;
use locality_graph::{Label, NodeId};

use crate::error::RoutingError;
use crate::model::{Awareness, Packet};
use crate::traits::{ceil_div, LocalRouter};
use crate::view::{LocalView, RoutingView};

/// Algorithm 1: origin-aware, predecessor-aware, succeeds on every
/// connected graph when `k >= n/4`, dilation at most 7 (Theorem 5).
///
/// ```
/// use local_routing::{engine, Alg1, LocalRouter};
/// use locality_graph::{generators, NodeId};
///
/// let g = generators::lollipop(12, 4);
/// let k = Alg1.min_locality(g.node_count());
/// let report = engine::route(&g, k, &Alg1, NodeId(2), NodeId(15), &Default::default());
/// assert!(report.status.is_delivered());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Alg1;

/// Algorithm 1B: Algorithm 1 with the refined rule U2 (cases U2a–U2f),
/// guaranteeing dilation at most 6 (Theorem 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Alg1B;

impl LocalRouter for Alg1 {
    fn name(&self) -> &'static str {
        "algorithm-1"
    }

    fn awareness(&self) -> Awareness {
        Awareness::FULL
    }

    fn min_locality(&self, n: usize) -> u32 {
        ceil_div(n, 4)
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        decide(packet, view, U2Mode::Plain).map(|(l, _)| l)
    }

    fn decide_explained(
        &self,
        packet: &Packet,
        view: &LocalView,
    ) -> Result<(Label, &'static str), RoutingError> {
        decide(packet, view, U2Mode::Plain)
    }
}

impl LocalRouter for Alg1B {
    fn name(&self) -> &'static str {
        "algorithm-1b"
    }

    fn awareness(&self) -> Awareness {
        Awareness::FULL
    }

    fn min_locality(&self, n: usize) -> u32 {
        ceil_div(n, 4)
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        decide(packet, view, U2Mode::Refined).map(|(l, _)| l)
    }

    fn decide_explained(
        &self,
        packet: &Packet,
        view: &LocalView,
    ) -> Result<(Label, &'static str), RoutingError> {
        decide(packet, view, U2Mode::Refined)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum U2Mode {
    Plain,
    Refined,
}

fn decide(
    packet: &Packet,
    view: &LocalView,
    u2: U2Mode,
) -> Result<(Label, &'static str), RoutingError> {
    // Case 1: dist(u, t) <= k — follow a shortest path in G_k(u).
    if let Some(t_node) = view.node_by_label(packet.target) {
        if t_node == view.center() {
            return Err(RoutingError::ProtocolViolation(
                "asked to forward a message already at its destination".into(),
            ));
        }
        let step = view.shortest_step_toward(t_node).ok_or_else(|| {
            RoutingError::ProtocolViolation("destination visible but unreachable".into())
        })?;
        return Ok((view.label(step), "case-1"));
    }

    let origin = packet.origin.ok_or(RoutingError::MissingOrigin)?;
    let rv = view.routing_view();

    // Active neighbours of u in G'_k(u), ordered by label: the paper's
    // a, b, c.
    let mut active = rv.analysis.active_neighbors();
    if active.is_empty() {
        return Err(RoutingError::NoActiveComponent);
    }
    if active.len() > 3 {
        return Err(RoutingError::TooManyActiveComponents {
            found: active.len(),
            max: 3,
        });
    }
    view.sort_by_label(&mut active);

    let v = packet
        .predecessor
        .and_then(|l| view.node_by_label(l))
        .filter(|p| view.raw().has_edge(view.center(), *p));

    // Case 2: u = s.
    if view.center_label() == origin {
        let rule = ["S1", "S2", "S3"][active.len() - 1];
        return Ok((view.label(s_rules(&active, v)), rule));
    }

    // Locate s within G'_k(u) to pick Case 3 vs Case 4.
    let s_node = view
        .node_by_label(origin)
        .filter(|x| rv.sub.contains_node(*x));
    let s_passive_comp = s_node.and_then(|x| {
        rv.analysis
            .component_of(x)
            .map(|i| &rv.analysis.components[i])
            .filter(|c| !c.is_active())
    });

    let (next, rule) = match s_passive_comp {
        // Case 4: s lies in a passive component of u.
        Some(comp) => (
            us_rules(&active, v, comp),
            ["US1", "US2", "US3"][active.len() - 1],
        ),
        // Case 3: s not visible in G'_k(u), or in an active component.
        None => match (active.len(), u2) {
            (2, U2Mode::Refined) => u2_refined(view, rv, &active, v, s_node),
            (len, _) => (u_rules(&active, v), ["U1", "U2", "U3"][len - 1]),
        },
    };
    Ok((view.label(next), rule))
}

/// Next element after `v` in the label-cyclic order of `active`.
fn cyclic_next(active: &[NodeId], v: NodeId) -> Option<NodeId> {
    let i = active.iter().position(|&x| x == v)?;
    Some(active[(i + 1) % active.len()])
}

/// Case 2 (rules S1–S3): the message is at the origin. Sequential port
/// probing: a return from port `j` advances to port `j + 1`; a return
/// from the last port reverses back into it.
fn s_rules(active: &[NodeId], v: Option<NodeId>) -> NodeId {
    match v {
        // First send: lowest-rank active neighbour.
        None => active[0],
        Some(v) => sequential_next(active, v),
    }
}

/// A return from port `j` advances to port `j + 1`; a return from the
/// last port (or from a passive neighbour, which cannot occur in a
/// well-formed run) picks the last (resp. first) port.
fn sequential_next(active: &[NodeId], v: NodeId) -> NodeId {
    match active.iter().position(|&x| x == v) {
        Some(i) if i + 1 < active.len() => active[i + 1],
        Some(_) => *active.last().expect("active is nonempty"),
        None => active[0],
    }
}

/// Case 3 (rules U1–U3): s not in a passive component of u.
fn u_rules(active: &[NodeId], v: Option<NodeId>) -> NodeId {
    match v {
        None => active[0],
        Some(v) => match active.len() {
            1 => active[0],
            2 => {
                // U2: pass straight through.
                if v == active[0] {
                    active[1]
                } else {
                    // A return from the second port — or from a passive
                    // neighbour — goes back out the first.
                    active[0]
                }
            }
            _ => cyclic_next(active, v).unwrap_or(active[0]),
        },
    }
}

/// Case 4 (rules US1–US3): s lies in the passive component `p_comp`.
fn us_rules(active: &[NodeId], v: Option<NodeId>, p_comp: &LocalComponent) -> NodeId {
    match v {
        None => active[0],
        Some(v) => {
            if p_comp.roots.binary_search(&v).is_ok() {
                // Arrival from the passive component sheltering s:
                // lowest-rank active neighbour.
                return active[0];
            }
            // US1–US3 follow the same sequential schema as S1–S3.
            sequential_next(active, v)
        }
    }
}

/// Rules U2a–U2f of Algorithm 1B: with two active components, reverse
/// pre-emptively when the node can already see that rule S2 (at `s`) or
/// US2 (at the constraint vertex sheltering `s`) would bounce the
/// message back.
fn u2_refined(
    view: &LocalView,
    rv: &RoutingView,
    active: &[NodeId],
    v: Option<NodeId>,
    s_node: Option<NodeId>,
) -> (NodeId, &'static str) {
    debug_assert_eq!(active.len(), 2);
    let plain = |rule: &'static str| (u_rules(active, v), rule);

    // U2a: s not in G'_k(u), or at the edge of knowledge.
    let Some(s) = s_node else {
        return plain("U2a");
    };
    let Some(ds) = rv.dist.get(s) else {
        return plain("U2a");
    };
    if ds >= view.k() {
        return plain("U2a");
    }
    let Some(comp_idx) = rv.analysis.component_of(s) else {
        return plain("U2a");
    };
    let comp = &rv.analysis.components[comp_idx];
    if !comp.is_active() {
        // s in a passive component is Case 4, handled before we get here.
        return plain("U2a");
    }
    // The active neighbour whose component shelters s, and the other one.
    let Some(&toward_s) = active.iter().find(|&&x| comp.contains(x)) else {
        return plain("U2f");
    };
    let Some(&other) = active.iter().find(|&&x| x != toward_s && !comp.contains(x)) else {
        return plain("U2f");
    };

    // The pivot vertex at which a bounce would occur: s itself when s is
    // a constraint vertex (U2b/c), else the constraint vertex e off
    // which s's passive branch hangs (U2d/e).
    let (pivot, via_s) = if comp.constraint_vertices.binary_search(&s).is_ok() {
        (Some(s), true)
    } else {
        (find_shelter_pivot(view, rv, comp, s), false)
    };
    let Some(pivot) = pivot else {
        return plain("U2f");
    };
    let Some(dp) = rv.dist.get(pivot) else {
        return plain("U2f");
    };

    // The pivot's neighbours straddling it on the constrained spine:
    // d at distance dp - 1 (or u itself when dp = 1), c at dp + 1, both
    // constraint vertices.
    let d_label: Option<Label> = if dp == 1 {
        Some(view.center_label())
    } else {
        pick_spine_neighbor(view, rv, comp, pivot, dp - 1)
    };
    let c_label = pick_spine_neighbor(view, rv, comp, pivot, dp + 1);
    let (Some(c_label), Some(d_label)) = (c_label, d_label) else {
        return plain("U2f");
    };

    if c_label > d_label {
        // U2b / U2d: the bounce rule at the pivot would pass the message
        // through; keep plain U2.
        plain(if via_s { "U2b" } else { "U2d" })
    } else {
        // U2c / U2e: the pivot would reverse the message; reverse here
        // instead — never forward toward s.
        (other, if via_s { "U2c" } else { "U2e" })
    }
}

/// The constraint vertex `e` of `comp` such that `s` lies in a branch
/// hanging off `e` that (seen from `e`) is passive: removing `e`
/// separates `s` from both the centre and every depth-k vertex.
fn find_shelter_pivot(
    view: &LocalView,
    rv: &RoutingView,
    comp: &LocalComponent,
    s: NodeId,
) -> Option<NodeId> {
    use locality_graph::traversal::{bfs_distances, FilteredTopology};
    for &e in &comp.constraint_vertices {
        if e == s {
            continue;
        }
        let masked = FilteredTopology::new(&rv.sub, |a: NodeId, b: NodeId| a != e && b != e);
        let reach = bfs_distances(&masked, s, None);
        if reach.contains(view.center()) {
            continue;
        }
        if comp.depth_k_nodes.iter().any(|&z| reach.contains(z)) {
            continue;
        }
        return Some(e);
    }
    None
}

/// The constraint-vertex neighbour of `pivot` in `G'_k(u)` at distance
/// `want` from the centre (lowest label on ties), as a label.
fn pick_spine_neighbor(
    view: &LocalView,
    rv: &RoutingView,
    comp: &LocalComponent,
    pivot: NodeId,
    want: u32,
) -> Option<Label> {
    rv.sub
        .neighbors(pivot)
        .iter()
        .copied()
        .filter(|&x| rv.dist.get(x) == Some(want))
        .filter(|x| comp.constraint_vertices.binary_search(x).is_ok())
        .map(|x| view.label(x))
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, RunStatus};
    use locality_graph::rng::DetRng;
    use locality_graph::{generators, permute, NodeId};

    fn assert_all_delivered<R: LocalRouter>(router: &R, g: &locality_graph::Graph, k: u32) {
        let m = engine::delivery_matrix(g, k, router);
        assert!(
            m.all_delivered(),
            "{} failed on {:?} with k={k}: first failure {:?}",
            router.name(),
            g,
            m.failures.first()
        );
    }

    #[test]
    fn delivers_on_paths_and_trees() {
        for g in [
            generators::path(12),
            generators::spider(3, 4),
            generators::binary_tree(3),
            generators::caterpillar(4, 1),
        ] {
            let k = Alg1.min_locality(g.node_count());
            assert_all_delivered(&Alg1, &g, k);
            assert_all_delivered(&Alg1B, &g, k);
        }
    }

    #[test]
    fn delivers_on_cycles_of_all_sizes() {
        for n in 3..=20 {
            let g = generators::cycle(n);
            let k = Alg1.min_locality(n);
            assert_all_delivered(&Alg1, &g, k);
            assert_all_delivered(&Alg1B, &g, k);
        }
    }

    #[test]
    fn delivers_on_cyclic_families() {
        for g in [
            generators::lollipop(9, 5),
            generators::theta(&[2, 3, 4]),
            generators::theta(&[3, 3, 3]),
            generators::complete(8),
            generators::grid(3, 4),
        ] {
            let k = Alg1.min_locality(g.node_count());
            assert_all_delivered(&Alg1, &g, k);
            assert_all_delivered(&Alg1B, &g, k);
        }
    }

    #[test]
    fn survives_label_permutations() {
        let mut rng = DetRng::seed_from_u64(20090810);
        for _ in 0..12 {
            let n = rng.gen_range(4..18);
            let base = generators::random_mixed(n, &mut rng);
            let g = permute::random_relabel(&base, &mut rng);
            let k = Alg1.min_locality(n);
            assert_all_delivered(&Alg1, &g, k);
            assert_all_delivered(&Alg1B, &g, k);
        }
    }

    #[test]
    fn larger_k_than_threshold_still_works() {
        let g = generators::lollipop(8, 4);
        for k in Alg1.min_locality(12)..=12 {
            assert_all_delivered(&Alg1, &g, k);
            assert_all_delivered(&Alg1B, &g, k);
        }
    }

    #[test]
    fn dilation_within_theorem_bounds() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..15 {
            let n = rng.gen_range(4..16);
            let g = generators::random_mixed(n, &mut rng);
            let k = Alg1.min_locality(n);
            for (router, bound) in [(&Alg1 as &dyn LocalRouter, 7.0), (&Alg1B, 6.0)] {
                let m = engine::delivery_matrix(&g, k, &router);
                assert!(m.all_delivered());
                if let Some((d, s, t)) = m.worst_dilation {
                    assert!(
                        d <= bound,
                        "{} dilation {d} > {bound} on {g:?} ({s},{t})",
                        router.name()
                    );
                }
            }
        }
    }

    #[test]
    fn observation1_in_successful_runs() {
        // A delivered predecessor-aware run crosses each directed edge at
        // most once (Observation 1).
        let g = generators::theta(&[3, 4, 5]);
        let k = Alg1.min_locality(g.node_count());
        for s in g.nodes() {
            for t in g.nodes().filter(|&t| t != s) {
                let r = engine::route(&g, k, &Alg1, s, t, &Default::default());
                assert_eq!(r.status, RunStatus::Delivered);
                assert!(r.max_directed_edge_uses() <= 1, "({s},{t}): {:?}", r.route);
            }
        }
    }

    #[test]
    fn s2_rule_reverses_on_high_rank_side() {
        // At the origin with two active neighbours, arrival from either
        // side forwards to b — in particular arrival from b reverses.
        let active = [NodeId(1), NodeId(2)];
        assert_eq!(s_rules(&active, None), NodeId(1));
        assert_eq!(s_rules(&active, Some(NodeId(1))), NodeId(2));
        assert_eq!(s_rules(&active, Some(NodeId(2))), NodeId(2));
    }

    #[test]
    fn s3_rule_probes_sequentially_and_reverses_at_last() {
        let active = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(s_rules(&active, None), NodeId(1));
        assert_eq!(s_rules(&active, Some(NodeId(1))), NodeId(2));
        assert_eq!(s_rules(&active, Some(NodeId(2))), NodeId(3));
        // Unlike U3, the origin must not cycle back to a (that directed
        // edge is already spent): it reverses into c.
        assert_eq!(s_rules(&active, Some(NodeId(3))), NodeId(3));
    }

    #[test]
    fn u2_rule_passes_through() {
        let active = [NodeId(1), NodeId(2)];
        assert_eq!(u_rules(&active, Some(NodeId(1))), NodeId(2));
        assert_eq!(u_rules(&active, Some(NodeId(2))), NodeId(1));
    }

    #[test]
    fn u3_rule_is_label_cyclic() {
        let active = [NodeId(1), NodeId(4), NodeId(9)];
        assert_eq!(u_rules(&active, Some(NodeId(1))), NodeId(4));
        assert_eq!(u_rules(&active, Some(NodeId(4))), NodeId(9));
        assert_eq!(u_rules(&active, Some(NodeId(9))), NodeId(1));
    }

    #[test]
    fn alg1b_never_does_worse_than_alg1_on_suite() {
        // Lemma 14: Alg 1B's route is a subsequence of Alg 1's, so it is
        // never longer.
        let mut rng = DetRng::seed_from_u64(99);
        for _ in 0..10 {
            let n = rng.gen_range(4..16);
            let g = generators::random_mixed(n, &mut rng);
            let k = Alg1.min_locality(n);
            for s in g.nodes() {
                for t in g.nodes().filter(|&t| t != s) {
                    let r1 = engine::route(&g, k, &Alg1, s, t, &Default::default());
                    let rb = engine::route(&g, k, &Alg1B, s, t, &Default::default());
                    assert!(r1.status.is_delivered() && rb.status.is_delivered());
                    assert!(
                        rb.hops() <= r1.hops(),
                        "1B longer than 1 on {g:?} ({s},{t}): {} vs {}",
                        rb.hops(),
                        r1.hops()
                    );
                }
            }
        }
    }
}
