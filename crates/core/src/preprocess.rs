//! The k-local preprocessing step (§5.1): dormant edges and the routing
//! subgraph `G'_k(u)`.
//!
//! When a message arrives at `u`, Algorithms 1, 1B and 2 first identify
//! *dormant* edges: on every local cycle of `u` (cycle through `u` of
//! length ≤ 2k) the edge of minimum [`EdgeRank`] is classified dormant.
//! The remaining edges reachable from `u` within `k` hops are the
//! *routing edges*, forming `G'_k(u)`.
//!
//! ### Cycle criterion
//!
//! Enumerating all simple local cycles is exponential, so we use the
//! equivalent-in-effect *closed-walk* criterion: an edge `e = {x, y}` of
//! `G_k(u)` is dormant at `u` iff there is a closed walk through `u`
//! and `e` of length at most `2k` whose other edges all have rank
//! greater than `rank(e)` — i.e.
//!
//! ```text
//! dist_{>rank(e)}(u, x) + dist_{>rank(e)}(u, y) + 1 <= 2k
//! ```
//!
//! where `dist_{>r}` uses only edges of rank exceeding `r`. Every simple
//! local cycle is such a walk (so everything the paper marks dormant is
//! marked), and the three structural facts the correctness proofs rely
//! on survive the relaxation:
//!
//! * **Lemma 2** (edges adjacent to `u` in `G'_k(u)` are consistent): a
//!   dormancy witness at any `w` for an edge `{u, v}` contains `u`, so
//!   it is also a witness at `u`.
//! * **Lemma 3** (a consistent path joins any two nodes): a witness walk
//!   minus `e` still contains a higher-rank path between `e`'s
//!   endpoints, which is all the induction needs.
//! * **Lemma 5** (consistent girth ≥ 2k+1): every simple cycle of length
//!   ≤ 2k is its own witness at each of its vertices, so its min-rank
//!   edge is dormant everywhere on the cycle.
//!
//! These three facts are property-tested in [`crate::verify`].
//!
//! ### Label convention
//!
//! Every function here takes labels as a **slot-aligned slice**:
//! `labels[view.slot_of(x)]` is the label of `x`. [`crate::LocalView`]
//! stores its label table in exactly this layout, so the hot path never
//! materialises a map.

use std::collections::BTreeSet;

use locality_graph::neighborhood;
use locality_graph::traversal::{self, FilteredTopology};
use locality_graph::{DistMap, EdgeRank, Graph, Label, NodeId, Subgraph, SubgraphBuilder};

/// An undirected edge normalised as `(min, max)` by node id.
pub type EdgeKey = (NodeId, NodeId);

/// Normalises an edge to its [`EdgeKey`].
#[inline]
pub fn edge_key(a: NodeId, b: NodeId) -> EdgeKey {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[inline]
fn label_of(view: &Subgraph, labels: &[Label], x: NodeId) -> Label {
    labels[view.slot_of(x).expect("labels cover every view node")]
}

/// Output of the preprocessing step at one node.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// Edges of `G_k(u)` classified dormant at `u`.
    pub dormant: BTreeSet<EdgeKey>,
    /// The routing subgraph `G'_k(u)`: non-dormant edges on paths of
    /// length ≤ k rooted at `u` (and the nodes they reach).
    pub routing: Subgraph,
    /// Distances from `u` within `G'_k(u)` (the paper's `dist'`).
    pub dist: DistMap,
}

/// Classifies the dormant edges of the view `G_k(u)`.
///
/// `labels` is slot-aligned with `view` (see the module docs); `center`
/// is `u`.
pub fn dormant_edges(
    view: &Subgraph,
    labels: &[Label],
    center: NodeId,
    k: u32,
) -> BTreeSet<EdgeKey> {
    let rank_of =
        |a: NodeId, b: NodeId| EdgeRank::new(label_of(view, labels, a), label_of(view, labels, b));
    let mut dormant = BTreeSet::new();
    for (x, y) in view.edges() {
        let r = rank_of(x, y);
        let higher = FilteredTopology::new(view, |a: NodeId, b: NodeId| rank_of(a, b) > r);
        // Both endpoints must be reachable within a combined budget of
        // 2k - 1 edges; cap the BFS there.
        let dist = traversal::bfs_distances(&higher, center, Some(2 * k));
        let (Some(dx), Some(dy)) = (dist.get(x), dist.get(y)) else {
            continue;
        };
        if dx + dy < 2 * k {
            dormant.insert(edge_key(x, y));
        }
    }
    dormant
}

/// Runs the full preprocessing step at `center`, producing `G'_k(u)`.
pub fn preprocess(view: &Subgraph, labels: &[Label], center: NodeId, k: u32) -> Preprocessed {
    let dormant = dormant_edges(view, labels, center, k);
    let filtered = FilteredTopology::new(view, |a: NodeId, b: NodeId| {
        !dormant.contains(&edge_key(a, b))
    });
    let routing = neighborhood::k_neighborhood(&filtered, center, k);
    let dist = traversal::bfs_distances(&routing, center, Some(k));
    Preprocessed {
        dormant,
        routing,
        dist,
    }
}

/// Reference implementation of the paper's literal dormancy rule:
/// enumerate every **simple** local cycle through `center` (length ≤
/// 2k) and mark its min-rank edge. Exponential in the worst case —
/// exists to validate the polynomial closed-walk relaxation used by
/// [`dormant_edges`] (which must mark a superset; see the module docs
/// and the ablation tests).
pub fn dormant_edges_exact(
    view: &Subgraph,
    labels: &[Label],
    center: NodeId,
    k: u32,
) -> BTreeSet<EdgeKey> {
    let mut dormant = BTreeSet::new();
    // DFS over simple paths center -> ... -> x with an edge x-center
    // closing the cycle; bounded by 2k edges.
    let mut path: Vec<NodeId> = vec![center];
    let mut on_path: BTreeSet<NodeId> = [center].into();
    fn dfs(
        view: &Subgraph,
        labels: &[Label],
        center: NodeId,
        max_len: usize,
        path: &mut Vec<NodeId>,
        on_path: &mut BTreeSet<NodeId>,
        dormant: &mut BTreeSet<EdgeKey>,
    ) {
        let u = *path.last().expect("path starts at center");
        for &v in view.neighbors(u) {
            if v == center && path.len() >= 3 {
                // A simple cycle of length path.len() closes here.
                let min_edge = path
                    .windows(2)
                    .map(|w| (w[0], w[1]))
                    .chain([(u, center)])
                    .min_by_key(|&(a, b)| {
                        EdgeRank::new(label_of(view, labels, a), label_of(view, labels, b))
                    })
                    .expect("cycle has edges");
                dormant.insert(edge_key(min_edge.0, min_edge.1));
            }
            if path.len() < max_len && !on_path.contains(&v) {
                path.push(v);
                on_path.insert(v);
                dfs(view, labels, center, max_len, path, on_path, dormant);
                on_path.remove(&v);
                path.pop();
            }
        }
    }
    dfs(
        view,
        labels,
        center,
        2 * k as usize,
        &mut path,
        &mut on_path,
        &mut dormant,
    );
    dormant
}

/// The slot-aligned label table of `view` read from the parent graph.
pub fn view_labels(g: &Graph, view: &Subgraph) -> Vec<Label> {
    view.node_slice().iter().map(|&x| g.label(x)).collect()
}

/// Union of every node's dormant classification: the *inconsistent*
/// edges of `G` for locality `k`. An edge is *consistent* iff it appears
/// in no node's dormant set (§5.1). Global knowledge — used by
/// verification and experiments, never by routers.
pub fn inconsistent_edges(g: &Graph, k: u32) -> BTreeSet<EdgeKey> {
    let mut out = BTreeSet::new();
    for u in g.nodes() {
        let view = neighborhood::k_neighborhood(g, u, k);
        let labels = view_labels(g, &view);
        out.extend(dormant_edges(&view, &labels, u, k));
    }
    out
}

/// The subgraph of `G` induced by its consistent edges (plus all nodes).
pub fn consistent_subgraph(g: &Graph, k: u32) -> Subgraph {
    let bad = inconsistent_edges(g, k);
    let mut b = SubgraphBuilder::with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.insert_node(u);
    }
    for (u, v) in g.edges() {
        if !bad.contains(&edge_key(u, v)) {
            b.insert_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::rng::DetRng;
    use locality_graph::{cycles, generators, permute};

    fn preprocess_at(g: &Graph, u: NodeId, k: u32) -> Preprocessed {
        let view = neighborhood::k_neighborhood(g, u, k);
        let labels = view_labels(g, &view);
        preprocess(&view, &labels, u, k)
    }

    #[test]
    fn tree_has_no_dormant_edges() {
        let g = generators::spider(3, 5);
        for u in g.nodes() {
            let p = preprocess_at(&g, u, 4);
            assert!(p.dormant.is_empty(), "dormant edges in a tree at {u}");
        }
    }

    #[test]
    fn small_cycle_breaks_at_min_rank_edge() {
        // Cycle 0-1-2-3-0 with k = 2: the whole cycle is local; the
        // min-rank edge is {0, 1}.
        let g = generators::cycle(4);
        for u in g.nodes() {
            let p = preprocess_at(&g, u, 2);
            assert_eq!(
                p.dormant.iter().collect::<Vec<_>>(),
                vec![&(NodeId(0), NodeId(1))],
                "at centre {u}"
            );
        }
    }

    #[test]
    fn long_cycle_not_broken() {
        // Cycle of length 9 with k = 4 (2k = 8 < 9): no local cycle.
        let g = generators::cycle(9);
        for u in g.nodes() {
            let p = preprocess_at(&g, u, 4);
            assert!(p.dormant.is_empty());
        }
    }

    #[test]
    fn boundary_cycle_length_exactly_2k_is_broken() {
        let g = generators::cycle(8);
        let p = preprocess_at(&g, NodeId(3), 4);
        assert_eq!(p.dormant.len(), 1);
        assert!(p.dormant.contains(&(NodeId(0), NodeId(1))));
    }

    #[test]
    fn routing_subgraph_prunes_beyond_k_after_removal() {
        // Cycle of length 8, k = 4: after removing the dormant edge
        // {0,1}, node 0's routing view is the path 0-7-6-5-4; nodes 1,
        // 2, 3 now sit 7, 6, 5 hops away along routing edges and leave
        // G'_4(0).
        let g = generators::cycle(8);
        let p = preprocess_at(&g, NodeId(0), 4);
        assert!(p.routing.contains_node(NodeId(4)));
        for far in [1u32, 2, 3] {
            assert!(!p.routing.contains_node(NodeId(far)), "{:?}", p.routing);
        }
        assert_eq!(p.dist[NodeId(4)], 4);
        assert_eq!(p.routing.edge_count(), 4);
    }

    #[test]
    fn lemma2_edges_at_center_are_globally_consistent() {
        // Every edge adjacent to u in G'_k(u) must be dormant nowhere.
        let k = 3;
        for g in [
            generators::cycle(6),
            generators::lollipop(5, 4),
            generators::theta(&[2, 3, 4]),
            generators::complete(5),
        ] {
            let bad = inconsistent_edges(&g, k);
            for u in g.nodes() {
                let p = preprocess_at(&g, u, k);
                for &v in p.routing.neighbors(u) {
                    assert!(
                        !bad.contains(&edge_key(u, v)),
                        "edge {{{u},{v}}} routing at {u} but inconsistent in {g:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma3_consistent_subgraph_is_connected() {
        for g in [
            generators::cycle(6),
            generators::lollipop(6, 3),
            generators::theta(&[2, 3, 4]),
            generators::complete(6),
            generators::grid(3, 3),
        ] {
            for k in 1..=4 {
                let sub = consistent_subgraph(&g, k);
                assert!(
                    traversal::is_connected(&sub),
                    "consistent subgraph disconnected for k={k} on {g:?}"
                );
            }
        }
    }

    #[test]
    fn lemma5_consistent_girth_exceeds_2k() {
        for g in [
            generators::complete(6),
            generators::grid(3, 4),
            generators::theta(&[2, 2, 3]),
            generators::lollipop(4, 2),
        ] {
            for k in 1..=4u32 {
                let sub = consistent_subgraph(&g, k);
                if let Some(girth) = cycles::girth(&sub) {
                    assert!(
                        girth > 2 * k,
                        "consistent girth {girth} < 2k+1 for k={k} on {g:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn dormancy_is_label_driven() {
        // Reversing labels changes which edge on a local cycle has
        // minimum rank, so the dormant edge moves.
        let g = generators::cycle(4);
        let h = permute::reverse_labels(&g);
        let p = preprocess_at(&h, NodeId(0), 2);
        // New labels: node i has label 3 - i; min-rank edge is {2, 3}
        // (labels 0 and 1).
        assert_eq!(
            p.dormant.iter().collect::<Vec<_>>(),
            vec![&(NodeId(2), NodeId(3))]
        );
    }

    #[test]
    fn shared_edge_between_two_local_cycles() {
        // Fig. 9 flavour: two small cycles sharing structure; both are
        // broken, possibly at distinct edges.
        let g = generators::theta(&[2, 2, 2]);
        let k = 2; // each cycle has length 4 = 2k
        let sub = consistent_subgraph(&g, k);
        assert!(traversal::is_connected(&sub));
        assert!(cycles::is_acyclic(&sub), "all 4-cycles must be broken");
    }

    #[test]
    fn walk_rule_contains_exact_rule() {
        // The closed-walk relaxation must mark every edge the literal
        // simple-cycle rule marks (dormant-exact ⊆ dormant-walk), and on
        // typical graphs the two coincide.
        let mut rng = DetRng::seed_from_u64(88);
        let mut coincided = 0;
        let mut total = 0;
        for _ in 0..25 {
            let n = rng.gen_range(4..12usize);
            let g = generators::random_mixed(n, &mut rng);
            for k in 1..=(n as u32 / 2) {
                for u in g.nodes() {
                    let view = neighborhood::k_neighborhood(&g, u, k);
                    let labels = view_labels(&g, &view);
                    let walk = dormant_edges(&view, &labels, u, k);
                    let exact = dormant_edges_exact(&view, &labels, u, k);
                    assert!(
                        exact.is_subset(&walk),
                        "walk rule missed a simple-cycle dormant edge at {u}, k={k}, {g:?}"
                    );
                    total += 1;
                    if exact == walk {
                        coincided += 1;
                    }
                }
            }
        }
        // The rules agree on the overwhelming majority of views; the
        // relaxation only ever adds edges (and provably preserves the
        // lemmas the algorithms rely on).
        assert!(coincided * 100 >= total * 85, "{coincided}/{total}");
    }

    #[test]
    fn exact_rule_on_known_cycles() {
        let g = generators::cycle(4);
        let view = neighborhood::k_neighborhood(&g, NodeId(2), 2);
        let labels = view_labels(&g, &view);
        let exact = dormant_edges_exact(&view, &labels, NodeId(2), 2);
        assert_eq!(
            exact.iter().collect::<Vec<_>>(),
            vec![&(NodeId(0), NodeId(1))]
        );
        // Length-9 cycle with k = 4: no local cycle, nothing dormant.
        let g = generators::cycle(9);
        let view = neighborhood::k_neighborhood(&g, NodeId(0), 4);
        let labels = view_labels(&g, &view);
        assert!(dormant_edges_exact(&view, &labels, NodeId(0), 4).is_empty());
    }

    #[test]
    fn edge_key_normalises() {
        assert_eq!(edge_key(NodeId(5), NodeId(2)), (NodeId(2), NodeId(5)));
        assert_eq!(edge_key(NodeId(2), NodeId(5)), (NodeId(2), NodeId(5)));
    }
}
