//! The locality-enforcing view handed to routers.

use std::fmt;
use std::fmt::Write as _;
use std::sync::OnceLock;

use locality_graph::components::ComponentAnalysis;
use locality_graph::{neighborhood, DistMap, Graph, Label, NodeId, Subgraph};

use crate::preprocess::{self, EdgeKey, Preprocessed};

/// Everything a node `u` may legally know: its k-neighbourhood
/// `G_k(u)` with labels, plus lazily computed derived structure
/// (component analysis and the preprocessed routing subgraph `G'_k(u)`).
///
/// A `LocalView` owns its data and has no back-reference to the parent
/// graph, so a router holding one *cannot* observe anything beyond `k`
/// hops — locality is a type-level guarantee, not a convention.
///
/// Internally the view is flat: labels and centre distances live in
/// `Vec`s aligned with the raw subgraph's slot order, and the
/// label→node lookup in a sorted vector searched by binary search. No
/// per-query allocation or tree traversal happens on the hot path, and
/// every per-node array is sized to the view's member count — not the
/// parent graph — so thousands of resident views (the oracle
/// cold-start case) cost memory proportional to what they can see.
pub struct LocalView {
    center: NodeId,
    k: u32,
    raw: Subgraph,
    /// `dists[raw.slot_of(x)]` is the distance from the centre to `x`;
    /// every member of `G_k(u)` is reached, so the vec is total.
    dists: Vec<u32>,
    /// `labels[raw.slot_of(x)]` is the label of visible node `x`.
    labels: Vec<Label>,
    /// Sorted by label; binary-searched by [`node_by_label`](Self::node_by_label).
    /// Built on first query: cold provisioning (BFS and artifact paths
    /// alike) never asks for it, so the sort and the allocation stay
    /// off the materialisation path entirely.
    by_label: OnceLock<Vec<(Label, NodeId)>>,
    routing: OnceLock<RoutingView>,
    raw_analysis: OnceLock<ComponentAnalysis>,
    /// All-targets memo for [`shortest_step_toward`](Self::shortest_step_toward),
    /// indexed by the target's raw slot and packed as the step's slot
    /// plus one (`0` = no step) — the artifact wire encoding, so
    /// decoded payloads seed it verbatim. Built by a single BFS on
    /// first use (see [`step_table`](Self::step_table)).
    steps: OnceLock<Vec<u32>>,
}

/// The preprocessed routing structure `G'_k(u)` (§5.1) with its
/// component analysis.
#[derive(Clone, Debug)]
pub struct RoutingView {
    /// Edges of `G_k(u)` classified dormant at the centre.
    pub dormant: std::collections::BTreeSet<EdgeKey>,
    /// The routing subgraph `G'_k(u)`.
    pub sub: Subgraph,
    /// Distances from the centre within `G'_k(u)` (the paper's `dist'`).
    pub dist: DistMap,
    /// Local-component decomposition of `G'_k(u)`.
    pub analysis: ComponentAnalysis,
}

impl LocalView {
    /// Extracts `G_k(u)` (with labels) from `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of `graph`.
    pub fn extract(graph: &Graph, u: NodeId, k: u32) -> LocalView {
        let (raw, raw_dist) = neighborhood::k_neighborhood_with_distances(graph, u, k);
        // Re-pack the BFS distances slot-aligned; members are exactly
        // the reached set, so the fallback is unreachable.
        let dists: Vec<u32> = raw
            .node_slice()
            .iter()
            .map(|&x| raw_dist.get(x).unwrap_or(0))
            .collect();
        let labels: Vec<Label> = raw.node_slice().iter().map(|&x| graph.label(x)).collect();
        LocalView {
            center: u,
            k,
            raw,
            dists,
            labels,
            by_label: OnceLock::new(),
            routing: OnceLock::new(),
            raw_analysis: OnceLock::new(),
            steps: OnceLock::new(),
        }
    }

    /// Reassembles a view from decoded artifact parts (the oracle's
    /// load path). `steps` is the precomputed min-label first-step
    /// table in raw slot order; it seeds the [`step_table`] memo so a
    /// decoded view never re-runs that BFS. The caller
    /// ([`crate::oracle`]) has validated that the parts are mutually
    /// consistent — slot-aligned `labels` and `dists` covering
    /// exactly the members — before constructing.
    ///
    /// [`step_table`]: Self::step_table
    pub(crate) fn from_parts(
        center: NodeId,
        k: u32,
        raw: Subgraph,
        dists: Vec<u32>,
        labels: Vec<Label>,
        steps: Vec<u32>,
    ) -> LocalView {
        let seeded = OnceLock::new();
        let _ = seeded.set(steps);
        LocalView {
            center,
            k,
            raw,
            dists,
            labels,
            by_label: OnceLock::new(),
            routing: OnceLock::new(),
            raw_analysis: OnceLock::new(),
            steps: seeded,
        }
    }

    /// The centre node `u`.
    #[inline]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The locality parameter `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The centre's label.
    #[inline]
    pub fn center_label(&self) -> Label {
        self.label(self.center)
    }

    /// The raw neighbourhood `G_k(u)`.
    #[inline]
    pub fn raw(&self) -> &Subgraph {
        &self.raw
    }

    /// Number of nodes visible.
    pub fn node_count(&self) -> usize {
        self.raw.node_count()
    }

    /// The slot-aligned label table: `labels()[raw().slot_of(x)]` is the
    /// label of `x`. Shared with [`preprocess`](crate::preprocess).
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Label of a visible node.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the view.
    pub fn label(&self, x: NodeId) -> Label {
        let slot = self
            .raw
            .slot_of(x)
            .unwrap_or_else(|| panic!("node {x} not in view"));
        self.labels[slot]
    }

    /// The label-sorted lookup table, built on first use.
    fn by_label(&self) -> &[(Label, NodeId)] {
        self.by_label.get_or_init(|| {
            let mut v: Vec<(Label, NodeId)> = self
                .raw
                .node_slice()
                .iter()
                .zip(&self.labels)
                .map(|(&x, &l)| (l, x))
                .collect();
            v.sort_unstable();
            v
        })
    }

    /// Finds a visible node by label.
    pub fn node_by_label(&self, l: Label) -> Option<NodeId> {
        let table = self.by_label();
        table
            .binary_search_by_key(&l, |&(lbl, _)| lbl)
            .ok()
            .map(|i| table[i].1)
    }

    /// Whether any visible node carries label `l`.
    pub fn contains_label(&self, l: Label) -> bool {
        self.node_by_label(l).is_some()
    }

    /// Distance from the centre within the view, if `x` is visible.
    pub fn dist_from_center(&self, x: NodeId) -> Option<u32> {
        let slot = self.raw.slot_of(x)?;
        self.dists.get(slot).copied()
    }

    /// Neighbours of the centre in `G_k(u)`, sorted by node id.
    pub fn center_neighbors(&self) -> &[NodeId] {
        self.raw.neighbors(self.center)
    }

    /// The neighbour of the centre of **lowest label** lying on a
    /// shortest path (within the view) from the centre to `target`.
    /// `None` if `target` is the centre or unreachable in the view.
    ///
    /// The answer is a pure function of the (immutable) view, so the
    /// whole table is memoized: the first query runs one BFS that
    /// answers for *every* target at once, every later query — for any
    /// target — is an array load. Routers query fresh (view, target)
    /// pairs on nearly every hop, so a per-target cache would miss
    /// constantly and re-run a full BFS per hop; amortizing all targets
    /// into one traversal is what makes this call cheap.
    pub fn shortest_step_toward(&self, target: NodeId) -> Option<NodeId> {
        let slot = self.raw.slot_of(target)?;
        match self.step_table().get(slot) {
            Some(&s) if s != 0 => Some(self.raw.id_of(s as usize - 1)),
            _ => None,
        }
    }

    /// Slot-indexed table of lowest-label shortest first steps, for
    /// every target simultaneously, from a single BFS out of the
    /// centre.
    ///
    /// Correctness: the first steps toward `t` are exactly the
    /// centre-neighbours `x` with `dist(x, t) = dist(c, t) - 1`
    /// (what [`traversal::shortest_path_steps`] computes). For `t` at
    /// BFS depth `d ≥ 2`, a shortest `c → x → ⋯ → t` path passes
    /// through some neighbour `p` of `t` at depth `d - 1`, and
    /// conversely any first step toward such a `p` extends to `t`; so
    /// `steps(t) = ⋃ steps(p)` over `t`'s depth-`(d-1)` neighbours,
    /// and the lowest label distributes over the union. Depth-1 nodes
    /// are their own unique first step. Processing the queue in BFS
    /// order finalizes every depth-`(d-1)` entry before any depth-`d`
    /// node is dequeued.
    pub(crate) fn step_table(&self) -> &[u32] {
        self.steps.get_or_init(|| {
            let n = self.raw.node_count();
            // Transient id → slot scratch: the wavefront resolves a
            // slot per edge end, which must stay O(1) even when the
            // view's IndexMap chose its sparse representation. The
            // scratch is freed on return, so it never joins the
            // resident footprint of a cached view.
            let bound = self.raw.node_slice().last().map_or(0, |m| m.index() + 1);
            let mut slot_by_id = vec![u32::MAX; bound];
            for (s, &x) in self.raw.node_slice().iter().enumerate() {
                slot_by_id[x.index()] = s as u32;
            }
            let mut step: Vec<u32> = vec![0; n];
            let mut depth: Vec<u32> = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::with_capacity(n);
            if let Some(c) = self.raw.slot_of(self.center) {
                depth[c] = 0;
                queue.push_back((self.center, c));
            }
            while let Some((u, us)) = queue.pop_front() {
                let du = depth[us];
                for &w in self.raw.neighbors_of_slot(us) {
                    // CSR targets are members, so the scratch lookup
                    // cannot miss.
                    let ws = slot_by_id[w.index()] as usize;
                    if depth[ws] == u32::MAX {
                        depth[ws] = du + 1;
                        queue.push_back((w, ws));
                    }
                    if depth[ws] == du + 1 {
                        // First step this edge contributes: `w` itself
                        // from the centre, else whatever reaches `u`.
                        // Entries are step slots plus one, so label
                        // comparison is two direct loads.
                        let cand = if u == self.center {
                            ws as u32 + 1
                        } else {
                            step[us]
                        };
                        if cand != 0 {
                            step[ws] = if step[ws] == 0 {
                                cand
                            } else {
                                let (a, b) = (step[ws] as usize - 1, cand as usize - 1);
                                if self.labels[b] < self.labels[a] {
                                    cand
                                } else {
                                    step[ws]
                                }
                            };
                        }
                    }
                }
            }
            step
        })
    }

    /// The preprocessed routing structure `G'_k(u)`, computed on first
    /// use and cached.
    pub fn routing_view(&self) -> &RoutingView {
        self.routing.get_or_init(|| {
            let Preprocessed {
                dormant,
                routing,
                dist,
            } = preprocess::preprocess(&self.raw, &self.labels, self.center, self.k);
            let analysis = ComponentAnalysis::analyze(&routing, self.center, self.k);
            RoutingView {
                dormant,
                sub: routing,
                dist,
                analysis,
            }
        })
    }

    /// Local-component analysis of the **raw** view `G_k(u)` (used by
    /// Algorithm 3, which skips preprocessing), cached.
    pub fn raw_analysis(&self) -> &ComponentAnalysis {
        self.raw_analysis
            .get_or_init(|| ComponentAnalysis::analyze(&self.raw, self.center, self.k))
    }

    /// Sorts `nodes` ascending by label — the paper's rank order on
    /// nodes.
    pub fn sort_by_label(&self, nodes: &mut [NodeId]) {
        nodes.sort_by_key(|&x| self.label(x));
    }

    /// A canonical textual fingerprint of the *labelled* view: two nodes
    /// of two different graphs with equal fingerprints are
    /// indistinguishable to any k-local algorithm. Used by tests that
    /// check decisions depend only on what the model allows.
    pub fn fingerprint(&self) -> String {
        let mut edges: Vec<(Label, Label)> = self
            .raw
            .edges()
            .map(|(a, b)| {
                let (la, lb) = (self.label(a), self.label(b));
                (la.min(lb), la.max(lb))
            })
            .collect();
        edges.sort_unstable();
        let mut isolated: Vec<Label> = self
            .raw
            .nodes()
            .filter(|&x| self.raw.degree(x) == 0)
            .map(|x| self.label(x))
            .collect();
        isolated.sort_unstable();
        let mut out = format!("k={};u={};", self.k, self.center_label());
        for (a, b) in edges {
            let _ = write!(out, "{a}-{b},");
        }
        for l in isolated {
            let _ = write!(out, "{l};");
        }
        out
    }
}

impl fmt::Debug for LocalView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LocalView(center={}, k={}, n={}, m={})",
            self.center,
            self.k,
            self.raw.node_count(),
            self.raw.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::{generators, traversal};

    #[test]
    fn extract_and_query() {
        let g = generators::cycle(10);
        let v = LocalView::extract(&g, NodeId(0), 3);
        assert_eq!(v.center(), NodeId(0));
        assert_eq!(v.k(), 3);
        assert_eq!(v.node_count(), 7);
        assert_eq!(v.center_label(), Label(0));
        assert_eq!(v.dist_from_center(NodeId(8)), Some(2));
        assert_eq!(v.node_by_label(Label(9)), Some(NodeId(9)));
        assert!(!v.contains_label(Label(5)));
    }

    #[test]
    fn shortest_step_prefers_low_label() {
        // On an even cycle, the antipode of the view centre within the
        // view: both directions tie, lowest label wins.
        let g = generators::cycle(8);
        let v = LocalView::extract(&g, NodeId(0), 4);
        assert_eq!(v.shortest_step_toward(NodeId(4)), Some(NodeId(1)));
        assert_eq!(v.shortest_step_toward(NodeId(0)), None);
    }

    #[test]
    fn shortest_step_memo_is_stable_and_complete() {
        // The one-BFS step table must agree, target for target, with
        // the per-target reference computation it replaces — including
        // repeated queries and invisible targets.
        for seed in 0..8u64 {
            let g = generators::random_connected(
                24,
                10,
                &mut locality_graph::rng::DetRng::seed_from_u64(seed),
            );
            for &(center, k) in &[(NodeId(0), 3u32), (NodeId(7), 2), (NodeId(13), 5)] {
                let view = LocalView::extract(&g, center, k);
                for t in g.nodes() {
                    let reference = traversal::shortest_path_steps(view.raw(), center, t)
                        .into_iter()
                        .min_by_key(|&x| view.label(x));
                    assert_eq!(
                        view.shortest_step_toward(t),
                        reference,
                        "seed {seed} target {t}"
                    );
                    assert_eq!(view.shortest_step_toward(t), reference, "memo hit differs");
                }
            }
        }
    }

    #[test]
    fn routing_view_is_cached_and_consistent() {
        let g = generators::cycle(8);
        let v = LocalView::extract(&g, NodeId(0), 4);
        let rv1 = v.routing_view() as *const RoutingView;
        let rv2 = v.routing_view() as *const RoutingView;
        assert_eq!(rv1, rv2, "routing view must be computed once");
        assert_eq!(v.routing_view().dormant.len(), 1);
    }

    #[test]
    fn fingerprints_equal_for_identical_local_structure() {
        // Node 5 in a long path vs the same position in a longer path:
        // identical k-neighbourhoods => identical fingerprints.
        let g1 = generators::path(20);
        let g2 = generators::path(30);
        let v1 = LocalView::extract(&g1, NodeId(5), 3);
        let v2 = LocalView::extract(&g2, NodeId(5), 3);
        assert_eq!(v1.fingerprint(), v2.fingerprint());
        // But a different centre differs.
        let v3 = LocalView::extract(&g2, NodeId(6), 3);
        assert_ne!(v1.fingerprint(), v3.fingerprint());
    }

    #[test]
    fn raw_analysis_matches_manual() {
        let g = generators::path(9);
        let v = LocalView::extract(&g, NodeId(4), 2);
        assert_eq!(v.raw_analysis().components.len(), 2);
        assert_eq!(v.raw_analysis().active_degree(), 2);
    }

    #[test]
    fn sort_by_label_uses_labels_not_ids() {
        let g = locality_graph::permute::reverse_labels(&generators::path(5));
        let v = LocalView::extract(&g, NodeId(2), 2);
        let mut nodes = vec![NodeId(0), NodeId(4), NodeId(2)];
        v.sort_by_label(&mut nodes);
        assert_eq!(nodes, vec![NodeId(4), NodeId(2), NodeId(0)]);
    }

    #[test]
    fn labels_are_slot_aligned_after_relabel() {
        let g = locality_graph::permute::reverse_labels(&generators::cycle(7));
        let v = LocalView::extract(&g, NodeId(3), 2);
        for &x in v.raw().node_slice() {
            assert_eq!(v.label(x), g.label(x));
            assert_eq!(v.node_by_label(g.label(x)), Some(x));
        }
    }
}
