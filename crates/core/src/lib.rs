//! # local-routing
//!
//! Deterministic, memoryless, stateless **k-local routing** on arbitrary
//! connected graphs — a full implementation of Bose, Carmi and Durocher,
//! *Bounding the Locality of Distributed Routing Algorithms* (PODC 2009).
//!
//! A *k-local routing algorithm* makes a sequence of distributed
//! forwarding decisions, each computed as a function
//! `f(s, t, u, v, G_k(u))` of the origin `s`, destination `t`, current
//! node `u`, the neighbour `v` that delivered the message, and the
//! k-neighbourhood `G_k(u)` — and nothing else. The paper proves tight
//! thresholds `T(n)` on `k` for such routing to be possible at all:
//!
//! | `T(n)`                 | origin-aware | origin-oblivious |
//! |------------------------|--------------|------------------|
//! | predecessor-aware      | `n/4`        | `n/3`            |
//! | predecessor-oblivious  | `n/2`        | `n/2`            |
//!
//! This crate provides the four positive algorithms behind a uniform
//! [`LocalRouter`] trait:
//!
//! * [`Alg1`] — origin- and predecessor-aware, succeeds for `k >= n/4`,
//!   dilation ≤ 7 (§5.1),
//! * [`Alg1B`] — refinement with dilation ≤ 6 (Appendix A),
//! * [`Alg2`] — origin-oblivious, succeeds for `k >= n/3`, dilation < 3
//!   (§5.2),
//! * [`Alg3`] — origin- and predecessor-oblivious, succeeds for
//!   `k >= ⌊n/2⌋` and follows a shortest path (§5.3),
//!
//! plus baselines ([`baselines`]), the deterministic run engine with
//! exact loop detection ([`engine`]), the preprocessing step that breaks
//! local cycles ([`preprocess`]), and checkers for the paper's structural
//! lemmas ([`verify`]).
//!
//! Locality is enforced *by construction*: a router receives a
//! [`LocalView`] extracted around the current node and physically cannot
//! observe the rest of the graph; origin/predecessor obliviousness is
//! enforced by the engine masking those packet fields before the router
//! sees them.
//!
//! # Quickstart
//!
//! ```
//! use local_routing::{engine, Alg1, LocalRouter};
//! use locality_graph::{generators, NodeId};
//!
//! let g = generators::cycle(16);
//! let k = Alg1.min_locality(g.node_count()); // ceil(n / 4) = 4
//! let report = engine::route(&g, k, &Alg1, NodeId(0), NodeId(8), &Default::default());
//! assert!(report.status.is_delivered());
//! assert!(report.dilation().unwrap() <= 7.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod alg1;
mod alg2;
mod alg3;
pub mod baselines;
pub mod engine;
mod error;
mod model;
pub mod oracle;
pub mod position;
pub mod preprocess;
pub mod stateful;
mod traits;
pub mod verify;
mod view;

pub use alg1::{Alg1, Alg1B};
pub use alg2::Alg2;
pub use alg3::{Alg3, Alg3OriginAware};
pub use engine::{ViewCache, ViewStore, ViewStoreStats};
pub use error::RoutingError;
pub use model::{Awareness, Packet};
pub use oracle::{OracleError, ViewArtifact};
pub use traits::LocalRouter;
pub use view::{LocalView, RoutingView};
