//! Position-based routing comparators (§3): greedy and compass routing.
//!
//! These operate in the *location-aware* model the related work uses —
//! every node knows its own and its neighbours' coordinates and the
//! destination's coordinates — which is strictly more information than
//! the paper's position-oblivious model provides. They are
//! 1-local, predecessor-oblivious, origin-oblivious, and still fail on
//! general graphs (greedy gets stuck in local minima; compass can
//! cycle), which is precisely the paper's motivation for asking what
//! position-*oblivious* algorithms can do as `k` grows.

use locality_graph::geo::{EmbeddedGraph, Point};
use locality_graph::NodeId;

/// A position-based 1-local routing rule: given the current node's
/// position, its neighbours' positions, and the destination's position,
/// choose the next hop (`None` = stuck).
pub trait PositionRouter {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// The forwarding decision.
    fn decide(&self, here: Point, neighbors: &[(NodeId, Point)], target: Point) -> Option<NodeId>;
}

/// Greedy routing (Finn): forward to the neighbour strictly closest to
/// the destination; stuck when no neighbour improves on the current
/// distance (a *local minimum* / void).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedyRouter;

impl PositionRouter for GreedyRouter {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn decide(&self, here: Point, neighbors: &[(NodeId, Point)], target: Point) -> Option<NodeId> {
        let d_here = here.dist(target);
        neighbors
            .iter()
            .filter(|(_, p)| p.dist(target) < d_here)
            .min_by(|(_, a), (_, b)| a.dist(target).total_cmp(&b.dist(target)))
            .map(|&(x, _)| x)
    }
}

/// Compass routing (Kranakis–Singh–Urrutia): forward along the edge
/// forming the smallest angle with the segment to the destination.
/// Never stuck, but can cycle forever.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompassRouter;

impl PositionRouter for CompassRouter {
    fn name(&self) -> &'static str {
        "compass"
    }

    fn decide(&self, here: Point, neighbors: &[(NodeId, Point)], target: Point) -> Option<NodeId> {
        neighbors
            .iter()
            .min_by(|(_, a), (_, b)| {
                here.angle_between(*a, target)
                    .total_cmp(&here.angle_between(*b, target))
            })
            .map(|&(x, _)| x)
    }
}

/// Why a position-based run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PositionRunStatus {
    /// Reached the destination.
    Delivered,
    /// The rule returned `None` (greedy's local minimum).
    Stuck(NodeId),
    /// The current node repeated: the memoryless rule cycles forever.
    LoopDetected,
}

/// Outcome of a position-based run.
#[derive(Clone, Debug)]
pub struct PositionRunReport {
    /// Why the run ended.
    pub status: PositionRunStatus,
    /// The walk taken.
    pub route: Vec<NodeId>,
}

impl PositionRunReport {
    /// Whether the message arrived.
    pub fn delivered(&self) -> bool {
        self.status == PositionRunStatus::Delivered
    }
}

/// Drives a position router from `s` to `t` on an embedded graph.
/// These rules are memoryless and predecessor-oblivious, so a repeated
/// current node proves an infinite loop.
pub fn route_position<R: PositionRouter>(
    g: &EmbeddedGraph,
    router: &R,
    s: NodeId,
    t: NodeId,
) -> PositionRunReport {
    let target = g.position(t);
    let mut current = s;
    let mut route = vec![s];
    let mut seen = std::collections::BTreeSet::new();
    loop {
        if current == t {
            return PositionRunReport {
                status: PositionRunStatus::Delivered,
                route,
            };
        }
        if !seen.insert(current) {
            return PositionRunReport {
                status: PositionRunStatus::LoopDetected,
                route,
            };
        }
        let neighbors: Vec<(NodeId, Point)> = g
            .graph
            .neighbors(current)
            .iter()
            .map(|&x| (x, g.position(x)))
            .collect();
        match router.decide(g.position(current), &neighbors, target) {
            None => {
                return PositionRunReport {
                    status: PositionRunStatus::Stuck(current),
                    route,
                }
            }
            Some(next) => {
                route.push(next);
                current = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::geo::{unit_disc, Point};

    fn p(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    #[test]
    fn greedy_succeeds_on_a_dense_line() {
        let pts: Vec<Point> = (0..8).map(|i| p(i as f64 * 0.5, 0.0)).collect();
        let g = unit_disc(&pts, 0.6);
        let r = route_position(&g, &GreedyRouter, NodeId(0), NodeId(7));
        assert!(r.delivered());
        assert_eq!(r.route.len(), 8);
    }

    /// A connected unit disc graph with a greedy trap: `m` is closer to
    /// `t` than any of its neighbours, but the only route detours left
    /// through the "wall" `l`, `l2`.
    ///
    /// ```text
    ///        t(-0.05, 1.9)
    ///   l2(-1, 1.9)
    ///   l (-1, 0.9)   m(0, 0.9)
    ///                 s(0, 0)        radius 1.0
    /// ```
    fn greedy_trap() -> locality_graph::geo::EmbeddedGraph {
        let pts = [
            p(0.0, 0.0),   // 0 = s
            p(0.0, 0.9),   // 1 = m (local minimum)
            p(-1.0, 0.9),  // 2 = l
            p(-1.0, 1.9),  // 3 = l2
            p(-0.05, 1.9), // 4 = t
        ];
        let g = unit_disc(&pts, 1.0);
        assert!(locality_graph::traversal::is_connected(&g.graph));
        assert!(
            !g.graph.has_edge(NodeId(1), NodeId(4)),
            "m must not reach t"
        );
        g
    }

    #[test]
    fn greedy_gets_stuck_in_a_void() {
        let g = greedy_trap();
        let r = route_position(&g, &GreedyRouter, NodeId(0), NodeId(4));
        assert_eq!(r.status, PositionRunStatus::Stuck(NodeId(1)));
    }

    #[test]
    fn compass_escapes_the_greedy_trap() {
        // Compass ignores distance and steers by angle, so it walks the
        // wall and delivers here (it cycles on other instances — see
        // Bose et al. [4]).
        let g = greedy_trap();
        let r = route_position(&g, &CompassRouter, NodeId(0), NodeId(4));
        assert!(r.delivered(), "{:?}", r);
    }

    #[test]
    fn alg1_delivers_where_greedy_sticks() {
        // The position-oblivious Algorithm 1, with k = ceil(n/4) = 2,
        // beats the location-aware greedy rule on the trap instance.
        use crate::{engine, Alg1, LocalRouter};
        let g = greedy_trap();
        let k = Alg1.min_locality(g.graph.node_count());
        let run = engine::route(
            &g.graph,
            k,
            &Alg1,
            NodeId(0),
            NodeId(4),
            &Default::default(),
        );
        assert!(run.status.is_delivered());
        assert_eq!(run.shortest, 4);
    }

    #[test]
    fn both_succeed_on_dense_random_udgs_mostly() {
        use locality_graph::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(33);
        let g = locality_graph::geo::random_connected_udg(25, 0.6, &mut rng);
        let mut greedy_ok = 0;
        let mut total = 0;
        for s in g.graph.nodes() {
            for t in g.graph.nodes().filter(|&t| t != s) {
                total += 1;
                if route_position(&g, &GreedyRouter, s, t).delivered() {
                    greedy_ok += 1;
                }
            }
        }
        // Dense UDGs rarely have voids; greedy should do very well.
        assert!(greedy_ok * 10 >= total * 9, "{greedy_ok}/{total}");
    }
}
