//! Checkers for the paper's structural results, used by tests and the
//! experiment harness to validate runs against the theory.

use locality_graph::{cycles, traversal, Graph, NodeId};

use crate::engine::RunReport;
use crate::preprocess::{self, EdgeKey};
use crate::view::LocalView;

/// Observation 1: in a successful predecessor-aware run, every directed
/// edge is traversed at most once.
pub fn check_observation1(report: &RunReport) -> Result<(), String> {
    if !report.status.is_delivered() {
        return Ok(()); // the observation only constrains successful runs
    }
    let uses = report.max_directed_edge_uses();
    if uses <= 1 {
        Ok(())
    } else {
        Err(format!("a directed edge was traversed {uses} times"))
    }
}

/// Lemma 3: the consistent edges of `G` connect every pair of nodes.
pub fn check_lemma3_consistent_connectivity(g: &Graph, k: u32) -> Result<(), String> {
    let sub = preprocess::consistent_subgraph(g, k);
    if traversal::is_connected(&sub) {
        Ok(())
    } else {
        Err("consistent subgraph is disconnected".into())
    }
}

/// Lemma 5: the graph induced by consistent edges has girth ≥ 2k + 1.
pub fn check_lemma5_consistent_girth(g: &Graph, k: u32) -> Result<(), String> {
    let sub = preprocess::consistent_subgraph(g, k);
    match cycles::girth(&sub) {
        None => Ok(()),
        Some(girth) if girth > 2 * k => Ok(()),
        Some(girth) => Err(format!("consistent girth {girth} < {}", 2 * k + 1)),
    }
}

/// Corollary 3 (scoped to where it applies): outside the delivery zone
/// (nodes with `dist(u, t) > k`, i.e. where Cases 2–4 decide), the
/// message travels only along consistent edges.
pub fn check_corollary3_route_consistency(
    g: &Graph,
    k: u32,
    report: &RunReport,
    t: NodeId,
) -> Result<(), String> {
    let inconsistent = preprocess::inconsistent_edges(g, k);
    let dist_to_t = traversal::bfs_distances(g, t, None);
    for w in report.route.windows(2) {
        let (u, v) = (w[0], w[1]);
        let deciding_far = dist_to_t.get(u).is_none_or(|d| d > k);
        if deciding_far && inconsistent.contains(&preprocess::edge_key(u, v)) {
            return Err(format!(
                "hop {u} -> {v} uses an inconsistent edge outside the delivery zone"
            ));
        }
    }
    Ok(())
}

/// Propositions 1–3: the maximum active degree over all nodes of `G` in
/// their preprocessed views `G'_k(u)`.
pub fn max_active_degree(g: &Graph, k: u32) -> usize {
    g.nodes()
        .map(|u| {
            let view = LocalView::extract(g, u, k);
            view.routing_view().analysis.active_degree()
        })
        .max()
        .unwrap_or(0)
}

/// The paper's standing observation in §5.1: every component of
/// `G'_k(u)` is independent (unique root). Returns the first violation.
pub fn check_routing_components_independent(g: &Graph, k: u32) -> Result<(), String> {
    for u in g.nodes() {
        let view = LocalView::extract(g, u, k);
        for c in &view.routing_view().analysis.components {
            if c.roots.len() != 1 {
                return Err(format!(
                    "component {:?} of G'_{k}({u}) has {} roots",
                    c.nodes,
                    c.roots.len()
                ));
            }
        }
    }
    Ok(())
}

/// Active components contain at least `k` nodes (the counting fact
/// behind Propositions 1–3).
pub fn check_active_components_large(g: &Graph, k: u32) -> Result<(), String> {
    for u in g.nodes() {
        let view = LocalView::extract(g, u, k);
        for c in view.routing_view().analysis.active_components() {
            if c.nodes.len() < k as usize {
                return Err(format!(
                    "active component of G'_{k}({u}) has only {} nodes",
                    c.nodes.len()
                ));
            }
        }
    }
    Ok(())
}

/// All edges of the route as normalised keys (diagnostics).
pub fn route_edges(report: &RunReport) -> Vec<EdgeKey> {
    report
        .route
        .windows(2)
        .map(|w| preprocess::edge_key(w[0], w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::{Alg1, Alg2, LocalRouter};
    use locality_graph::generators;
    use locality_graph::rng::DetRng;

    #[test]
    fn structural_lemmas_on_random_graphs() {
        let mut rng = DetRng::seed_from_u64(1234);
        for _ in 0..10 {
            let n = rng.gen_range(4..14);
            let g = generators::random_mixed(n, &mut rng);
            for k in 1..=(n as u32 / 2 + 1) {
                check_lemma3_consistent_connectivity(&g, k).unwrap();
                check_lemma5_consistent_girth(&g, k).unwrap();
            }
        }
    }

    #[test]
    fn proposition1_and_2_on_random_graphs() {
        let mut rng = DetRng::seed_from_u64(77);
        for _ in 0..10 {
            let n = rng.gen_range(4..14);
            let g = generators::random_mixed(n, &mut rng);
            let k1 = Alg1.min_locality(n);
            assert!(max_active_degree(&g, k1) <= 3, "Prop 1 violated on {g:?}");
            let k2 = Alg2.min_locality(n);
            assert!(max_active_degree(&g, k2) <= 2, "Prop 2 violated on {g:?}");
        }
    }

    #[test]
    fn routing_components_independent_on_random_graphs() {
        let mut rng = DetRng::seed_from_u64(4242);
        for _ in 0..10 {
            let n = rng.gen_range(4..12);
            let g = generators::random_mixed(n, &mut rng);
            let k = Alg1.min_locality(n);
            check_routing_components_independent(&g, k).unwrap();
            check_active_components_large(&g, k).unwrap();
        }
    }

    #[test]
    fn corollary3_on_alg1_routes() {
        let g = generators::lollipop(10, 4);
        let k = Alg1.min_locality(g.node_count());
        for s in g.nodes() {
            for t in g.nodes().filter(|&t| t != s) {
                let r = engine::route(&g, k, &Alg1, s, t, &Default::default());
                check_observation1(&r).unwrap();
                check_corollary3_route_consistency(&g, k, &r, t).unwrap();
            }
        }
    }
}
