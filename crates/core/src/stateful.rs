//! Stateful local routing — the §6.3 relaxation.
//!
//! The paper's model is memoryless and stateless; its thresholds say
//! that under those constraints `k ∈ Ω(n)` is unavoidable. §6.3 notes
//! the escape hatch: allow the *message* to carry state and 1-local
//! routing becomes possible (Braverman achieves it with `Θ(log n)`
//! bits). This module provides the framework for that comparison plus a
//! simple, fully correct representative: depth-first traversal with a
//! message-carried stack and visited set (`O(n log n)` bits, `k = 1`).
//! The gap between `O(n log n)` and `Θ(log n)` is exactly the open
//! territory the paper points at.

use std::collections::BTreeSet;

use locality_graph::{traversal, Graph, Label, NodeId};

use crate::engine::{RunOptions, RunReport, RunStatus};
use crate::error::RoutingError;
use crate::model::Packet;
use crate::view::LocalView;

/// Message-carried state: a stack of labels (the DFS path) and the set
/// of visited labels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageState {
    /// The DFS path from the origin to the current node.
    pub stack: Vec<Label>,
    /// Labels of every node the message has entered.
    pub visited: BTreeSet<Label>,
}

impl MessageState {
    /// Size of the state in bits, charging `ceil(log2(max_label + 1))`
    /// bits per stored label.
    pub fn bits(&self, max_label: Label) -> usize {
        let per = (u32::BITS - max_label.value().leading_zeros()).max(1) as usize;
        (self.stack.len() + self.visited.len()) * per
    }
}

/// A k-local routing algorithm whose forwarding decision may read and
/// rewrite message-carried state.
pub trait StatefulLocalRouter {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// The locality the algorithm needs (1 for DFS).
    fn min_locality(&self, n: usize) -> u32;

    /// One forwarding decision: returns the next hop and the state to
    /// carry onward.
    ///
    /// # Errors
    ///
    /// Implementations report structural violations as [`RoutingError`].
    fn decide(
        &self,
        packet: &Packet,
        view: &LocalView,
        state: &MessageState,
    ) -> Result<(Label, MessageState), RoutingError>;
}

/// Depth-first traversal with message-carried state: 1-local, succeeds
/// on every connected graph, visits children in label order and
/// backtracks along the carried stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DfsStateRouter;

impl StatefulLocalRouter for DfsStateRouter {
    fn name(&self) -> &'static str {
        "dfs-with-state"
    }

    fn min_locality(&self, _n: usize) -> u32 {
        1
    }

    fn decide(
        &self,
        _packet: &Packet,
        view: &LocalView,
        state: &MessageState,
    ) -> Result<(Label, MessageState), RoutingError> {
        let mut state = state.clone();
        let here = view.center_label();
        if state.stack.last() != Some(&here) {
            state.stack.push(here);
        }
        state.visited.insert(here);
        // Descend into the smallest unvisited neighbour, if any.
        let mut nbrs: Vec<NodeId> = view.center_neighbors().to_vec();
        view.sort_by_label(&mut nbrs);
        for &x in &nbrs {
            let l = view.label(x);
            if !state.visited.contains(&l) {
                return Ok((l, state));
            }
        }
        // Backtrack.
        state.stack.pop();
        match state.stack.last() {
            Some(&parent) => Ok((parent, state)),
            None => Err(RoutingError::ProtocolViolation(
                "DFS exhausted the graph without finding the destination".into(),
            )),
        }
    }
}

/// Outcome of a stateful run: the walk plus the peak state size.
#[derive(Clone, Debug)]
pub struct StatefulRunReport {
    /// The plain run report.
    pub report: RunReport,
    /// Peak message state, in bits.
    pub max_state_bits: usize,
}

/// Drives a stateful router from `s` to `t`.
pub fn route_stateful<R: StatefulLocalRouter>(
    graph: &Graph,
    k: u32,
    router: &R,
    s: NodeId,
    t: NodeId,
    options: &RunOptions,
) -> StatefulRunReport {
    let n = graph.node_count();
    let shortest = traversal::distance(graph, s, t).unwrap_or(0);
    let max_steps = options.max_steps.unwrap_or(8 * n * n + 16);
    let max_label = graph.max_label().unwrap_or(Label(0));
    let origin = graph.label(s);
    let target = graph.label(t);

    let mut route = vec![s];
    let mut current = s;
    let mut predecessor: Option<NodeId> = None;
    let mut state = MessageState::default();
    let mut max_state_bits = 0;

    let status = loop {
        if current == t {
            break RunStatus::Delivered;
        }
        if route.len() > max_steps {
            break RunStatus::StepLimit;
        }
        let view = LocalView::extract(graph, current, k);
        let packet = Packet::new(origin, target, predecessor.map(|p| graph.label(p)));
        match router.decide(&packet, &view, &state) {
            Err(e) => break RunStatus::RouterError(e),
            Ok((next_label, new_state)) => {
                let next = graph.node_by_label(next_label);
                let Some(next) = next.filter(|&x| graph.has_edge(current, x)) else {
                    break RunStatus::InvalidDecision { at: current };
                };
                max_state_bits = max_state_bits.max(new_state.bits(max_label));
                state = new_state;
                route.push(next);
                predecessor = Some(current);
                current = next;
            }
        }
    };

    StatefulRunReport {
        report: RunReport {
            status,
            route,
            shortest,
            k,
        },
        max_state_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::rng::DetRng;
    use locality_graph::{generators, permute};

    #[test]
    fn dfs_delivers_with_k_equal_one() {
        let mut rng = DetRng::seed_from_u64(63);
        for _ in 0..20 {
            let n = rng.gen_range(2..20);
            let g = permute::random_relabel(&generators::random_mixed(n, &mut rng), &mut rng);
            for s in g.nodes() {
                for t in g.nodes().filter(|&t| t != s) {
                    let r = route_stateful(&g, 1, &DfsStateRouter, s, t, &Default::default());
                    assert!(
                        r.report.status.is_delivered(),
                        "DFS failed on {g:?} ({s},{t}): {:?}",
                        r.report.status
                    );
                    // DFS crosses each tree edge at most twice.
                    assert!(r.report.hops() <= 2 * g.node_count());
                }
            }
        }
    }

    #[test]
    fn dfs_state_grows_linearly_not_more() {
        let g = generators::path(64);
        let r = route_stateful(
            &g,
            1,
            &DfsStateRouter,
            NodeId(0),
            NodeId(63),
            &Default::default(),
        );
        assert!(r.report.status.is_delivered());
        // Visited set dominates: ~n labels at ~6-7 bits each.
        assert!(r.max_state_bits >= 64 * 6);
        assert!(r.max_state_bits <= 2 * 64 * 8);
    }

    #[test]
    fn dfs_route_length_is_at_most_twice_edges_explored() {
        let g = generators::binary_tree(4);
        let r = route_stateful(
            &g,
            1,
            &DfsStateRouter,
            NodeId(0),
            NodeId(14),
            &Default::default(),
        );
        assert!(r.report.status.is_delivered());
        assert!(r.report.hops() <= 2 * g.edge_count());
    }

    #[test]
    fn state_bits_accounting() {
        let mut st = MessageState::default();
        st.stack.push(Label(3));
        st.visited.insert(Label(3));
        st.visited.insert(Label(200));
        // max label 255 -> 8 bits per entry, 3 entries.
        assert_eq!(st.bits(Label(255)), 24);
        assert_eq!(MessageState::default().bits(Label(0)), 0);
    }
}
