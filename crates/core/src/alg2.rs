//! Algorithm 2 (§5.2): origin-oblivious, predecessor-aware (n/3)-local
//! routing with dilation at most 3 (Theorem 7) — optimal by Theorem 4.
//!
//! For `k >= n/3` every node has active degree at most 2 in `G'_k(u)`
//! (Proposition 2), so the origin reference point of Algorithm 1 is not
//! needed: a message simply passes straight through two-active nodes
//! (rule U2), reverses at one-active nodes (rule U1), and climbs out of
//! passive components along any active edge.

use locality_graph::Label;

use crate::error::RoutingError;
use crate::model::{Awareness, Packet};
use crate::traits::{ceil_div, LocalRouter};
use crate::view::LocalView;

/// Algorithm 2: origin-oblivious, predecessor-aware, succeeds on every
/// connected graph when `k >= n/3`, dilation < 3.
///
/// ```
/// use local_routing::{engine, Alg2, LocalRouter};
/// use locality_graph::{generators, NodeId};
///
/// let g = generators::cycle(12);
/// let k = Alg2.min_locality(g.node_count()); // 4
/// let report = engine::route(&g, k, &Alg2, NodeId(0), NodeId(6), &Default::default());
/// assert!(report.status.is_delivered());
/// assert!(report.dilation().unwrap() < 3.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Alg2;

impl LocalRouter for Alg2 {
    fn name(&self) -> &'static str {
        "algorithm-2"
    }

    fn awareness(&self) -> Awareness {
        Awareness::ORIGIN_OBLIVIOUS
    }

    fn min_locality(&self, n: usize) -> u32 {
        ceil_div(n, 3)
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        // Case 1: dist(u, t) <= k.
        if let Some(t_node) = view.node_by_label(packet.target) {
            if t_node == view.center() {
                return Err(RoutingError::ProtocolViolation(
                    "asked to forward a message already at its destination".into(),
                ));
            }
            let step = view.shortest_step_toward(t_node).ok_or_else(|| {
                RoutingError::ProtocolViolation("destination visible but unreachable".into())
            })?;
            return Ok(view.label(step));
        }

        let rv = view.routing_view();
        let mut active = rv.analysis.active_neighbors();
        if active.is_empty() {
            return Err(RoutingError::NoActiveComponent);
        }
        if active.len() > 2 {
            return Err(RoutingError::TooManyActiveComponents {
                found: active.len(),
                max: 2,
            });
        }
        view.sort_by_label(&mut active);

        let v = packet
            .predecessor
            .and_then(|l| view.node_by_label(l))
            .filter(|p| view.raw().has_edge(view.center(), *p));

        let next = match v {
            // Case 2: first send from the origin — any active edge.
            None => active[0],
            Some(v) => match active.len() {
                // Rule U1: reverse.
                1 => active[0],
                // Rule U2: pass through; arrivals from passive
                // components take any active edge.
                _ => {
                    if v == active[0] {
                        active[1]
                    } else {
                        // From the second port or a passive neighbour:
                        // out the first.
                        active[0]
                    }
                }
            },
        };
        Ok(view.label(next))
    }

    fn decide_explained(
        &self,
        packet: &Packet,
        view: &LocalView,
    ) -> Result<(Label, &'static str), RoutingError> {
        let label = self.decide(packet, view)?;
        let rule = if view.contains_label(packet.target) {
            "case-1"
        } else if packet.predecessor.is_none() {
            "case-2"
        } else {
            let rv = view.routing_view();
            match rv.analysis.active_neighbors().len() {
                1 => "U1",
                _ => "U2",
            }
        };
        Ok((label, rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use locality_graph::rng::DetRng;
    use locality_graph::{generators, permute};

    fn assert_all_delivered(g: &locality_graph::Graph, k: u32) {
        let m = engine::delivery_matrix(g, k, &Alg2);
        assert!(
            m.all_delivered(),
            "algorithm-2 failed on {g:?} with k={k}: {:?}",
            m.failures.first()
        );
        if let Some((d, s, t)) = m.worst_dilation {
            assert!(d < 3.0, "dilation {d} >= 3 at ({s},{t}) on {g:?}");
        }
    }

    #[test]
    fn delivers_on_basic_families() {
        for g in [
            generators::path(10),
            generators::cycle(9),
            generators::spider(3, 3),
            generators::lollipop(7, 3),
            generators::theta(&[2, 3, 3]),
            generators::complete(7),
            generators::grid(3, 3),
        ] {
            assert_all_delivered(&g, Alg2.min_locality(g.node_count()));
        }
    }

    #[test]
    fn survives_label_permutations() {
        let mut rng = DetRng::seed_from_u64(31337);
        for _ in 0..12 {
            let n = rng.gen_range(3..16);
            let g = permute::random_relabel(&generators::random_mixed(n, &mut rng), &mut rng);
            assert_all_delivered(&g, Alg2.min_locality(n));
        }
    }

    #[test]
    fn origin_is_masked_by_engine() {
        // Run via the engine and also call decide directly with a masked
        // packet: both paths must agree, proving the router never needed
        // the origin.
        let g = generators::cycle(9);
        let k = Alg2.min_locality(9);
        let view = LocalView::extract(&g, locality_graph::NodeId(0), k);
        let p = Packet {
            origin: None,
            target: Label(5),
            predecessor: Some(Label(1)),
        };
        let choice = Alg2.decide(&p, &view).unwrap();
        assert!(choice == Label(1) || choice == Label(8));
    }

    #[test]
    fn threshold_is_ceil_n_over_3() {
        assert_eq!(Alg2.min_locality(9), 3);
        assert_eq!(Alg2.min_locality(10), 4);
    }

    #[test]
    fn shortest_path_when_target_visible() {
        let g = generators::path(8);
        let k = Alg2.min_locality(8);
        let r = engine::route(
            &g,
            k,
            &Alg2,
            locality_graph::NodeId(1),
            locality_graph::NodeId(3),
            &Default::default(),
        );
        assert_eq!(r.hops(), 2);
        assert_eq!(r.dilation(), Some(1.0));
    }
}
