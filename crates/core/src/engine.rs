//! Deterministic run engine: drives a router hop by hop with exact loop
//! detection, and evaluates delivery and dilation (§2.2).

// The `HashMap`/`HashSet` here are the hot-path exceptions to the R2
// determinism rule: the view-cache shards and the loop-detection state
// set are keyed lookups/membership tests whose iteration order never
// reaches an output. Each site is justified in `lint.allow`; clippy's
// workspace-wide `disallowed-types` is relaxed file-locally to match.
#![allow(clippy::disallowed_types)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use locality_graph::{traversal, Graph, NodeId};

use crate::error::RoutingError;
use crate::model::Packet;
use crate::oracle::ViewArtifact;
use crate::traits::LocalRouter;
use crate::view::LocalView;

/// Options controlling a run.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Hard cap on hops, over and above exact loop detection. Mostly a
    /// belt-and-braces guard; `None` means `8 * n^2`.
    pub max_steps: Option<usize>,
}

/// Why a run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The message reached the destination.
    Delivered,
    /// The run state `(current, predecessor)` recurred: the deterministic
    /// stateless router provably cycles forever.
    LoopDetected,
    /// The router returned an error (its structural preconditions were
    /// violated — typically `k` below threshold).
    RouterError(RoutingError),
    /// The router named a non-neighbour (or a node that does not exist):
    /// an outright protocol bug.
    InvalidDecision {
        /// The node at which the bad decision was made.
        at: NodeId,
    },
    /// The belt-and-braces step cap fired.
    StepLimit,
}

impl RunStatus {
    /// Whether the message was delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RunStatus::Delivered)
    }
}

/// Outcome of one routed message.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run ended.
    pub status: RunStatus,
    /// The walk taken, starting at the origin. For failed runs this is
    /// the prefix walked before the failure was proven.
    pub route: Vec<NodeId>,
    /// `dist(s, t)` in the underlying graph.
    pub shortest: u32,
    /// The locality parameter used.
    pub k: u32,
}

impl RunReport {
    /// Number of edges traversed.
    pub fn hops(&self) -> usize {
        self.route.len().saturating_sub(1)
    }

    /// `route length / dist(s, t)`; `None` unless delivered with
    /// `s != t`.
    pub fn dilation(&self) -> Option<f64> {
        if self.status.is_delivered() && self.shortest > 0 {
            Some(self.hops() as f64 / self.shortest as f64)
        } else {
            None
        }
    }

    /// Maximum number of times any directed edge was traversed
    /// (Observation 1: at most once each way for a successful
    /// predecessor-aware run).
    pub fn max_directed_edge_uses(&self) -> usize {
        let mut uses: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
        for w in self.route.windows(2) {
            *uses.entry((w[0], w[1])).or_insert(0) += 1;
        }
        uses.values().copied().max().unwrap_or(0)
    }
}

/// Number of independently locked shards in a [`ViewCache`]. A small
/// power of two: enough to keep a handful of worker threads from
/// serialising on one lock, cheap enough to allocate per cache.
const VIEW_CACHE_SHARDS: usize = 16;

/// Shared, thread-safe cache of [`LocalView`]s for one `(graph, k)`
/// pair. Views (and their lazily computed preprocessing) are built
/// **exactly once** per node and reused across runs and across threads
/// — exactly like real nodes that preprocess once and then route many
/// messages (§5.1: "the preprocessing step need not be repeated unless
/// the network topology changes").
///
/// Internally the cache is sharded: each shard is an `RwLock` over a
/// hash map of `Arc<LocalView>`. Lookups of an already-built view take
/// a read lock only; the first request for a node holds its shard's
/// write lock while extracting, so concurrent requests for the same
/// node converge on one `Arc` and the extraction work is never
/// duplicated. All methods take `&self`, so one cache can be shared by
/// reference across [`std::thread::scope`] workers.
///
/// ```
/// use local_routing::engine::ViewCache;
/// use locality_graph::{generators, NodeId};
///
/// let g = generators::cycle(8);
/// let cache = ViewCache::new(&g, 2);
/// let a = cache.view(NodeId(0));
/// let b = cache.view(NodeId(0));
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // built once, shared
/// ```
pub struct ViewCache<'g> {
    graph: &'g Graph,
    k: u32,
    shards: Vec<RwLock<HashMap<NodeId, Arc<LocalView>>>>,
}

impl<'g> ViewCache<'g> {
    /// Creates an empty cache for `(graph, k)`.
    pub fn new(graph: &'g Graph, k: u32) -> ViewCache<'g> {
        ViewCache {
            graph,
            k,
            shards: (0..VIEW_CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    /// The locality parameter.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The graph the cached views were extracted from.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of views currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether no view has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn shard_of(&self, u: NodeId) -> &RwLock<HashMap<NodeId, Arc<LocalView>>> {
        &self.shards[u.index() % VIEW_CACHE_SHARDS]
    }

    /// The view at `u`, extracting it on first request. Safe to call
    /// from many threads; all callers receive the same `Arc`.
    pub fn view(&self, u: NodeId) -> Arc<LocalView> {
        // A poisoned shard still holds structurally consistent data
        // (writes are complete `Arc` insertions), so recover the guard
        // instead of propagating a sibling thread's panic.
        let shard = self.shard_of(u);
        if let Some(v) = shard.read().unwrap_or_else(PoisonError::into_inner).get(&u) {
            return Arc::clone(v);
        }
        // Double-checked: take the write lock and extract under it, so
        // a racing thread blocks here and reuses our result instead of
        // extracting a second time.
        let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(u)
                .or_insert_with(|| Arc::new(LocalView::extract(self.graph, u, self.k))),
        )
    }
}

/// Owned, invalidatable sibling of [`ViewCache`] for long-lived hosts
/// whose graph **changes** over time — the simulator being the
/// canonical one. A `ViewCache` borrows its graph, so a struct that
/// owns and mutates its own `Graph` cannot hold one; a `ViewStore`
/// holds no graph reference and is handed the current graph at each
/// lookup instead.
///
/// The contract is the inverse of `ViewCache`'s immutability: after
/// any topology change the **caller** must [`invalidate`]
/// (Self::invalidate) every node whose `G_k(u)` the change could have
/// reached (the simulator's dirty-set computation does exactly this).
/// A lookup then re-extracts from the graph it is given; undamaged
/// entries keep their `Arc` — and with it every lazily memoized
/// routing structure — across the wave.
///
/// Sharded exactly like [`ViewCache`], so provisioning can be shared
/// across scoped worker threads.
pub struct ViewStore {
    k: u32,
    shards: Vec<RwLock<HashMap<NodeId, CachedView>>>,
    /// Precomputed payloads to materialize misses from, when the store
    /// was opened over an artifact ([`from_artifact`](Self::from_artifact)).
    backing: Option<ArtifactBacking>,
    /// Resident-view budget across all shards; `0` means unbounded
    /// (the historical behaviour). See
    /// [`set_resident_budget`](Self::set_resident_budget).
    budget: AtomicUsize,
    /// Monotone logical clock stamping every hit/insert, the LRU order
    /// eviction follows.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    artifact_loads: AtomicU64,
    rebuilds: AtomicU64,
    evictions: AtomicU64,
}

/// One resident entry of a [`ViewStore`] shard: the view plus its
/// last-touched stamp. The stamp is an atomic so the hit path can
/// refresh it under the shard's *read* lock.
struct CachedView {
    view: Arc<LocalView>,
    touched: AtomicU64,
}

/// The oracle side of a [`ViewStore`]: the artifact misses are decoded
/// from, plus a per-node staleness flag. Invalidation marks a node
/// stale instead of merely evicting it, so the next lookup re-extracts
/// from the *live* graph rather than serving a payload the topology
/// has moved past.
struct ArtifactBacking {
    artifact: Arc<ViewArtifact>,
    stale: Vec<AtomicBool>,
}

/// Cumulative effectiveness counters of a [`ViewStore`]: how often a
/// lookup was served from cache (`hits`) versus extracted (`misses`),
/// and how many invalidations actually evicted an entry. Relaxed
/// atomics — the counts are exact under the store's own locking (every
/// miss holds the shard write lock), only their *reads* are racy, and
/// the simulator reads them once, after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStoreStats {
    /// Lookups served from an existing entry.
    pub hits: u64,
    /// Lookups that materialized a fresh view (by extraction, or by
    /// artifact decode on a backed store).
    pub misses: u64,
    /// Invalidations that evicted a cached entry.
    pub invalidations: u64,
    /// Misses served by decoding the backing artifact (lazy
    /// materialization; zero on unbacked stores).
    pub artifact_loads: u64,
    /// Misses on a **backed** store that had to fall back to BFS
    /// extraction because the entry was stale — the churn conservation
    /// counter: after a wave, this grows by exactly the dirty-radius
    /// node count, proving untouched entries were never rebuilt.
    pub rebuilds: u64,
    /// Clean entries dropped to stay inside the resident-view budget
    /// ([`ViewStore::set_resident_budget`]); zero on unbounded stores.
    /// Budget evictions are invisible to routing (an evicted view
    /// re-materializes identically on the next miss) and deliberately
    /// excluded from `invalidations`, so the churn conservation pair
    /// `misses == artifact_loads + rebuilds` keeps holding on backed
    /// stores.
    pub evictions: u64,
}

impl ViewStore {
    /// Creates an empty store for locality `k`.
    pub fn new(k: u32) -> ViewStore {
        ViewStore {
            k,
            shards: (0..VIEW_CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            backing: None,
            budget: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            artifact_loads: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Bounds the number of resident views across all cache shards;
    /// `0` removes the bound (the default). Once a shard exceeds its
    /// slice of the budget, its least-recently-touched **clean**
    /// entries are evicted at insert time: on an unbacked store every
    /// entry is clean (the caller invalidates on topology change, so
    /// residents always match the current graph); on an artifact-backed
    /// store only artifact-fresh entries are candidates — churn-rebuilt
    /// entries stay pinned, so the `rebuilds` conservation counter
    /// still counts exactly the dirty radius. Eviction never changes a
    /// routing result, only when views are re-materialized; a store
    /// over budget with nothing evictable simply stays over budget.
    pub fn set_resident_budget(&self, views: usize) {
        self.budget.store(views, Ordering::Relaxed);
    }

    /// The configured resident-view budget (`0` = unbounded).
    pub fn resident_budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Opens a store over a prebuilt [`ViewArtifact`]: lookups decode
    /// the node's payload from the arena instead of running extraction
    /// BFS, until [`invalidate`](Self::invalidate) marks a node stale —
    /// from then on that node (and only that node) re-extracts from the
    /// live graph, exactly like an unbacked store.
    pub fn from_artifact(artifact: Arc<ViewArtifact>) -> ViewStore {
        let mut store = ViewStore::new(artifact.k());
        let stale = (0..artifact.node_count())
            .map(|_| AtomicBool::new(false))
            .collect();
        store.backing = Some(ArtifactBacking { artifact, stale });
        store
    }

    /// Whether misses are served from an artifact.
    pub fn is_artifact_backed(&self) -> bool {
        self.backing.is_some()
    }

    /// Snapshot of the cumulative hit/miss/invalidation counters.
    pub fn stats(&self) -> ViewStoreStats {
        ViewStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            artifact_loads: self.artifact_loads.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The locality parameter.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of views currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether no view is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn shard_of(&self, u: NodeId) -> &RwLock<HashMap<NodeId, CachedView>> {
        &self.shards[u.index() % VIEW_CACHE_SHARDS]
    }

    /// Stamps the next LRU-clock value.
    #[inline]
    fn touch(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The view at `u`, extracted from `graph` on first request (or on
    /// the first request after an [`invalidate`](Self::invalidate)).
    ///
    /// The caller is responsible for passing the same graph state
    /// between invalidations — the store cannot tell graphs apart.
    pub fn view(&self, graph: &Graph, u: NodeId) -> Arc<LocalView> {
        let shard = self.shard_of(u);
        if let Some(c) = shard.read().unwrap_or_else(PoisonError::into_inner).get(&u) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            c.touched.store(self.touch(), Ordering::Relaxed);
            return Arc::clone(&c.view);
        }
        let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
        // Double-checked: a racing thread may have extracted while we
        // waited for the write lock — that is a hit, not a miss.
        if let Some(c) = map.get(&u) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            c.touched.store(self.touch(), Ordering::Relaxed);
            return Arc::clone(&c.view);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(self.materialize(graph, u));
        map.insert(
            u,
            CachedView {
                view: Arc::clone(&v),
                touched: AtomicU64::new(self.touch()),
            },
        );
        self.enforce_budget(&mut map);
        v
    }

    /// Evicts least-recently-touched clean entries from one shard
    /// until it is back inside its slice of the resident budget.
    /// Called with the shard's write lock held, straight after an
    /// insert. Selection scans the shard map but picks the strict
    /// minimum of the (unique) LRU stamps, so the choice is
    /// independent of hash iteration order.
    fn enforce_budget(&self, map: &mut HashMap<NodeId, CachedView>) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        let cap = budget.div_ceil(VIEW_CACHE_SHARDS).max(1);
        while map.len() > cap {
            let victim = map
                .iter()
                .filter(|(u, _)| self.evictable(**u))
                .min_by_key(|(_, c)| c.touched.load(Ordering::Relaxed))
                .map(|(u, _)| *u);
            let Some(u) = victim else {
                // Everything left is churn-rebuilt (pinned to protect
                // the conservation counters): stay over budget.
                return;
            };
            map.remove(&u);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the resident entry at `u` may be dropped by the budget:
    /// always on an unbacked store, only while artifact-fresh on a
    /// backed one.
    fn evictable(&self, u: NodeId) -> bool {
        match &self.backing {
            None => true,
            Some(b) => b
                .stale
                .get(u.index())
                .is_some_and(|s| !s.load(Ordering::Relaxed)),
        }
    }

    /// Produces the view for a miss: decoded from the artifact when the
    /// store is backed and `u` is not stale, else extracted from the
    /// live graph. A decode failure also falls back to extraction — the
    /// decoded and extracted views are behaviourally identical by the
    /// artifact contract, so degrading is always safe — but counts as a
    /// rebuild, so the conservation counter exposes it.
    fn materialize(&self, graph: &Graph, u: NodeId) -> LocalView {
        if let Some(b) = &self.backing {
            let fresh = b
                .stale
                .get(u.index())
                .is_some_and(|s| !s.load(Ordering::Relaxed));
            if fresh {
                if let Ok(view) = b.artifact.decode_view(u) {
                    self.artifact_loads.fetch_add(1, Ordering::Relaxed);
                    return view;
                }
            }
            self.rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        LocalView::extract(graph, u, self.k)
    }

    /// Drops the cached view at `u`, forcing re-extraction on the next
    /// lookup. Returns whether an entry existed. `Arc`s already handed
    /// out keep the old view alive — exactly the stale-view semantics
    /// the simulator wants for nodes that have not yet been told about
    /// a topology change.
    ///
    /// On an artifact-backed store this also marks `u` **stale**: its
    /// payload describes a topology that no longer exists, so every
    /// later miss at `u` re-extracts from the live graph instead of
    /// decoding.
    pub fn invalidate(&self, u: NodeId) -> bool {
        if let Some(b) = &self.backing {
            if let Some(s) = b.stale.get(u.index()) {
                s.store(true, Ordering::Relaxed);
            }
        }
        let evicted = self
            .shard_of(u)
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&u)
            .is_some();
        if evicted {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }
}

/// Routes one message from `s` to `t` with a fresh view cache.
pub fn route<R: LocalRouter + ?Sized>(
    graph: &Graph,
    k: u32,
    router: &R,
    s: NodeId,
    t: NodeId,
    options: &RunOptions,
) -> RunReport {
    let cache = ViewCache::new(graph, k);
    route_with_cache(&cache, router, s, t, options)
}

/// Routes one message reusing an existing view cache (preferred when
/// routing many pairs on the same graph).
pub fn route_with_cache<R: LocalRouter + ?Sized>(
    cache: &ViewCache<'_>,
    router: &R,
    s: NodeId,
    t: NodeId,
    options: &RunOptions,
) -> RunReport {
    let graph = cache.graph;
    let k = cache.k;
    let n = graph.node_count();
    let shortest = traversal::distance(graph, s, t).unwrap_or(0);
    let max_steps = options.max_steps.unwrap_or(8 * n * n + 16);
    let awareness = router.awareness();
    let origin_label = graph.label(s);
    let target_label = graph.label(t);

    let mut route = vec![s];
    let mut current = s;
    let mut predecessor: Option<NodeId> = None;
    let mut seen: HashSet<(NodeId, Option<NodeId>)> = HashSet::new();

    let status = loop {
        if current == t {
            break RunStatus::Delivered;
        }
        // The run state that determines all future behaviour of a pure
        // stateless router: the current node plus — only if the router
        // can see it — the predecessor.
        let state = (
            current,
            if awareness.predecessor {
                predecessor
            } else {
                None
            },
        );
        if !seen.insert(state) {
            break RunStatus::LoopDetected;
        }
        if route.len() > max_steps {
            break RunStatus::StepLimit;
        }
        let view = cache.view(current);
        let packet = Packet::new(
            origin_label,
            target_label,
            predecessor.map(|p| graph.label(p)),
        )
        .masked(awareness);
        match router.decide(&packet, &view) {
            Err(e) => break RunStatus::RouterError(e),
            Ok(next_label) => {
                let next = graph.node_by_label(next_label);
                let Some(next) = next.filter(|&x| graph.has_edge(current, x)) else {
                    break RunStatus::InvalidDecision { at: current };
                };
                route.push(next);
                predecessor = Some(current);
                current = next;
            }
        }
    };

    RunReport {
        status,
        route,
        shortest,
        k,
    }
}

/// A run together with the rule that fired at each hop.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// The plain run report.
    pub report: RunReport,
    /// `rules[i]` names the rule that produced hop `i`
    /// (`route[i] -> route[i + 1]`); see
    /// [`LocalRouter::decide_explained`].
    pub rules: Vec<&'static str>,
}

/// Routes one message recording the rule fired at every hop — the
/// executable version of the paper's route narrations ("Rule S2 is
/// applied at s, Rule U3 at c, …").
pub fn route_traced<R: LocalRouter + ?Sized>(
    graph: &Graph,
    k: u32,
    router: &R,
    s: NodeId,
    t: NodeId,
    options: &RunOptions,
) -> TracedRun {
    let cache = ViewCache::new(graph, k);
    let n = graph.node_count();
    let shortest = traversal::distance(graph, s, t).unwrap_or(0);
    let max_steps = options.max_steps.unwrap_or(8 * n * n + 16);
    let awareness = router.awareness();
    let origin_label = graph.label(s);
    let target_label = graph.label(t);

    let mut route = vec![s];
    let mut rules = Vec::new();
    let mut current = s;
    let mut predecessor: Option<NodeId> = None;
    let mut seen: HashSet<(NodeId, Option<NodeId>)> = HashSet::new();

    let status = loop {
        if current == t {
            break RunStatus::Delivered;
        }
        let state = (
            current,
            if awareness.predecessor {
                predecessor
            } else {
                None
            },
        );
        if !seen.insert(state) {
            break RunStatus::LoopDetected;
        }
        if route.len() > max_steps {
            break RunStatus::StepLimit;
        }
        let view = cache.view(current);
        let packet = Packet::new(
            origin_label,
            target_label,
            predecessor.map(|p| graph.label(p)),
        )
        .masked(awareness);
        match router.decide_explained(&packet, &view) {
            Err(e) => break RunStatus::RouterError(e),
            Ok((next_label, rule)) => {
                let next = graph.node_by_label(next_label);
                let Some(next) = next.filter(|&x| graph.has_edge(current, x)) else {
                    break RunStatus::InvalidDecision { at: current };
                };
                route.push(next);
                rules.push(rule);
                predecessor = Some(current);
                current = next;
            }
        }
    };

    TracedRun {
        report: RunReport {
            status,
            route,
            shortest,
            k,
        },
        rules,
    }
}

/// Aggregate outcome over every ordered origin–destination pair.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Number of `(s, t)` pairs attempted.
    pub runs: usize,
    /// Pairs that failed, with their status.
    pub failures: Vec<(NodeId, NodeId, RunStatus)>,
    /// Largest dilation observed among delivered pairs, with its pair.
    pub worst_dilation: Option<(f64, NodeId, NodeId)>,
    /// Total hops over all delivered runs (for average route length).
    pub total_hops: usize,
}

impl MatrixReport {
    /// Whether every pair was delivered.
    pub fn all_delivered(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `router` on every ordered pair `(s, t)`, `s != t`.
pub fn delivery_matrix<R: LocalRouter + ?Sized>(graph: &Graph, k: u32, router: &R) -> MatrixReport {
    delivery_matrix_for_pairs(
        graph,
        k,
        router,
        graph
            .nodes()
            .flat_map(|s| graph.nodes().filter(move |&t| t != s).map(move |t| (s, t))),
    )
}

/// Runs `router` on the given pairs, sharing one view cache.
pub fn delivery_matrix_for_pairs<R, I>(graph: &Graph, k: u32, router: &R, pairs: I) -> MatrixReport
where
    R: LocalRouter + ?Sized,
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    let cache = ViewCache::new(graph, k);
    delivery_matrix_with_cache(&cache, router, pairs)
}

/// Runs `router` on the given pairs through a caller-supplied (and
/// possibly shared) view cache.
pub fn delivery_matrix_with_cache<R, I>(cache: &ViewCache<'_>, router: &R, pairs: I) -> MatrixReport
where
    R: LocalRouter + ?Sized,
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    let options = RunOptions::default();
    let mut report = MatrixReport {
        runs: 0,
        failures: Vec::new(),
        worst_dilation: None,
        total_hops: 0,
    };
    for (s, t) in pairs {
        let run = route_with_cache(cache, router, s, t, &options);
        report.runs += 1;
        if run.status.is_delivered() {
            report.total_hops += run.hops();
            if let Some(d) = run.dilation() {
                if report.worst_dilation.is_none_or(|(w, _, _)| d > w) {
                    report.worst_dilation = Some((d, s, t));
                }
            }
        } else {
            report.failures.push((s, t, run.status));
        }
    }
    report
}

/// Runs `router` on every ordered pair, fanned out over `threads` OS
/// threads sharing **one** [`ViewCache`]: each `G_k(u)` (and its lazy
/// preprocessing) is extracted exactly once no matter how many workers
/// route through `u`. Semantically identical to [`delivery_matrix`],
/// modulo the order of `failures`; used by the large-n validation
/// suites and the experiment harness.
pub fn delivery_matrix_parallel<R>(
    graph: &Graph,
    k: u32,
    router: &R,
    threads: usize,
) -> MatrixReport
where
    R: LocalRouter + Sync + ?Sized,
{
    let pairs: Vec<(NodeId, NodeId)> = graph
        .nodes()
        .flat_map(|s| graph.nodes().filter(move |&t| t != s).map(move |t| (s, t)))
        .collect();
    let threads = threads.max(1).min(pairs.len().max(1));
    let chunk = pairs.len().div_ceil(threads);
    let cache = ViewCache::new(graph, k);
    let partials: Vec<MatrixReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk.max(1))
            .map(|slice| {
                let cache = &cache;
                scope
                    .spawn(move || delivery_matrix_with_cache(cache, router, slice.iter().copied()))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(partial) => partial,
                // A worker panic is not ours to swallow: re-raise it on
                // the coordinating thread without minting a new panic
                // site.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = MatrixReport {
        runs: 0,
        failures: Vec::new(),
        worst_dilation: None,
        total_hops: 0,
    };
    for p in partials {
        out.runs += p.runs;
        out.failures.extend(p.failures);
        out.total_hops += p.total_hops;
        if let Some((d, s, t)) = p.worst_dilation {
            if out.worst_dilation.is_none_or(|(w, _, _)| d > w) {
                out.worst_dilation = Some((d, s, t));
            }
        }
    }
    out.failures.sort_by_key(|&(s, t, _)| (s, t));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Awareness;
    use crate::RoutingError;
    use locality_graph::{generators, Label};

    /// A router that always forwards to the centre's lowest-label
    /// neighbour — loops on anything with a detour.
    struct Stubborn;

    impl LocalRouter for Stubborn {
        fn name(&self) -> &'static str {
            "stubborn"
        }
        fn awareness(&self) -> Awareness {
            Awareness::OBLIVIOUS
        }
        fn min_locality(&self, _n: usize) -> u32 {
            1
        }
        fn decide(&self, _p: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
            let mut nbrs: Vec<NodeId> = view.center_neighbors().to_vec();
            view.sort_by_label(&mut nbrs);
            Ok(view.label(nbrs[0]))
        }
    }

    /// A router that names a non-neighbour.
    struct Liar;

    impl LocalRouter for Liar {
        fn name(&self) -> &'static str {
            "liar"
        }
        fn awareness(&self) -> Awareness {
            Awareness::OBLIVIOUS
        }
        fn min_locality(&self, _n: usize) -> u32 {
            1
        }
        fn decide(&self, _p: &Packet, _view: &LocalView) -> Result<Label, RoutingError> {
            Ok(Label(9999))
        }
    }

    #[test]
    fn trivial_self_delivery() {
        let g = generators::path(4);
        let r = route(&g, 1, &Stubborn, NodeId(2), NodeId(2), &Default::default());
        assert!(r.status.is_delivered());
        assert_eq!(r.hops(), 0);
        assert_eq!(r.dilation(), None);
    }

    #[test]
    fn stubborn_loops_and_is_caught_quickly() {
        // On a path, always going to the lowest label means bouncing
        // between nodes 0 and 1 forever; state (u) recurs immediately.
        let g = generators::path(6);
        let r = route(&g, 2, &Stubborn, NodeId(3), NodeId(5), &Default::default());
        assert_eq!(r.status, RunStatus::LoopDetected);
        assert!(r.route.len() <= 12, "loop detection must be prompt");
    }

    #[test]
    fn stubborn_succeeds_toward_low_labels() {
        let g = generators::path(6);
        let r = route(&g, 2, &Stubborn, NodeId(4), NodeId(0), &Default::default());
        assert!(r.status.is_delivered());
        assert_eq!(r.hops(), 4);
        assert_eq!(r.dilation(), Some(1.0));
    }

    #[test]
    fn invalid_decisions_are_reported() {
        let g = generators::path(3);
        let r = route(&g, 1, &Liar, NodeId(0), NodeId(2), &Default::default());
        assert_eq!(r.status, RunStatus::InvalidDecision { at: NodeId(0) });
    }

    #[test]
    fn matrix_counts_failures() {
        let g = generators::path(4);
        let m = delivery_matrix(&g, 2, &Stubborn);
        assert_eq!(m.runs, 12);
        assert!(!m.all_delivered());
        // Pairs with t left of s succeed (6), plus (0, 1) — the walk
        // from 0 bounces to 1 before looping. The other 5 pairs fail.
        assert_eq!(m.failures.len(), 5);
    }

    #[test]
    fn parallel_matrix_agrees_with_serial() {
        use crate::Alg1;
        let g = generators::lollipop(10, 4);
        let k = 4;
        let serial = delivery_matrix(&g, k, &Alg1);
        for threads in [1usize, 3, 8] {
            let par = delivery_matrix_parallel(&g, k, &Alg1, threads);
            assert_eq!(par.runs, serial.runs);
            assert_eq!(par.failures, serial.failures);
            assert_eq!(par.total_hops, serial.total_hops);
            assert_eq!(
                par.worst_dilation.map(|(d, _, _)| d),
                serial.worst_dilation.map(|(d, _, _)| d)
            );
        }
    }

    #[test]
    fn view_cache_shares_views() {
        let g = generators::cycle(8);
        let cache = ViewCache::new(&g, 2);
        assert!(cache.is_empty());
        let a = cache.view(NodeId(0));
        let b = cache.view(NodeId(0));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn view_cache_shared_across_threads_returns_same_arc() {
        // Many threads hammering the same nodes must converge on one
        // Arc per node — the extraction happens exactly once.
        let g = generators::grid(5, 5);
        let cache = ViewCache::new(&g, 3);
        let views: Vec<Vec<Arc<LocalView>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (cache, g) = (&cache, &g);
                    scope.spawn(move || g.nodes().map(|u| cache.view(u)).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for per_thread in &views[1..] {
            for (a, b) in views[0].iter().zip(per_thread) {
                assert!(Arc::ptr_eq(a, b), "threads must share cached views");
            }
        }
        assert_eq!(cache.len(), g.node_count());
    }

    #[test]
    fn view_store_invalidation_reextracts_from_current_graph() {
        let mut g = generators::cycle(8);
        let store = ViewStore::new(2);
        assert!(store.is_empty());
        let a = store.view(&g, NodeId(0));
        let b = store.view(&g, NodeId(0));
        assert!(Arc::ptr_eq(&a, &b), "unchanged entries share one Arc");
        assert_eq!(store.len(), 1);
        // Mutate the topology; the store cannot see it until told.
        g.insert_edge(NodeId(0), NodeId(4)).expect("simple edge");
        let stale = store.view(&g, NodeId(0));
        assert!(Arc::ptr_eq(&a, &stale), "uninvalidated views stay stale");
        assert!(store.invalidate(NodeId(0)));
        assert!(!store.invalidate(NodeId(0)), "second invalidate is a no-op");
        let fresh = store.view(&g, NodeId(0));
        assert!(!Arc::ptr_eq(&a, &fresh));
        assert_eq!(
            fresh.center_neighbors(),
            &[NodeId(1), NodeId(4), NodeId(7)],
            "re-extraction must see the new edge"
        );
        // The old Arc is still alive and still shows the old world.
        assert_eq!(a.center_neighbors(), &[NodeId(1), NodeId(7)]);
    }

    #[test]
    fn view_store_budget_evicts_least_recently_touched() {
        let g = generators::cycle(64);
        let store = ViewStore::new(1);
        // Budget 32 → 2 resident views per internal shard. Nodes 0, 16,
        // and 32 all hash to the same shard, so they compete.
        store.set_resident_budget(32);
        assert_eq!(store.resident_budget(), 32);
        let v0 = store.view(&g, NodeId(0));
        let _v16 = store.view(&g, NodeId(16));
        // Refresh 0 so 16 becomes the LRU entry, then overflow the
        // shard: 16 must be the victim.
        let hit = store.view(&g, NodeId(0));
        assert!(Arc::ptr_eq(&v0, &hit));
        let _v32 = store.view(&g, NodeId(32));
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.invalidations, 0, "budget evictions are not invalidations");
        let back = store.view(&g, NodeId(0));
        assert!(Arc::ptr_eq(&v0, &back), "recently touched entry survived");
        store.view(&g, NodeId(16));
        assert_eq!(store.stats().misses, 4, "evicted node 16 re-misses");
    }

    #[test]
    fn view_store_unbounded_by_default_never_evicts() {
        let g = generators::cycle(64);
        let store = ViewStore::new(1);
        for u in g.nodes() {
            store.view(&g, u);
        }
        assert_eq!(store.len(), 64);
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn view_store_budget_pins_churn_rebuilt_entries() {
        use crate::oracle::ViewArtifact;
        let mut g = generators::cycle(64);
        let artifact = Arc::new(ViewArtifact::build(&g, 1));
        let store = ViewStore::from_artifact(artifact);
        store.set_resident_budget(16); // one resident view per shard
                                       // Churn at node 0: the artifact entry goes permanently stale,
                                       // so the re-extracted view is a conservation-counted rebuild
                                       // and must never be evicted by the budget.
        g.insert_edge(NodeId(0), NodeId(7)).expect("simple edge");
        store.invalidate(NodeId(0));
        let rebuilt = store.view(&g, NodeId(0));
        // Overflow node 0's shard with artifact-fresh entries: they are
        // the only evictable candidates.
        let _v16 = store.view(&g, NodeId(16));
        let _v32 = store.view(&g, NodeId(32));
        let s = store.stats();
        assert!(s.evictions >= 1, "fresh entries were evicted");
        assert_eq!(s.rebuilds, 1, "only the churned node rebuilt");
        let still = store.view(&g, NodeId(0));
        assert!(
            Arc::ptr_eq(&rebuilt, &still),
            "rebuilt entry must be pinned, not re-rebuilt"
        );
        let s = store.stats();
        assert_eq!(
            s.misses,
            s.artifact_loads + s.rebuilds,
            "conservation must survive budget eviction"
        );
    }

    #[test]
    fn view_store_matches_view_cache_per_node() {
        let g = generators::grid(4, 4);
        let cache = ViewCache::new(&g, 3);
        let store = ViewStore::new(3);
        for u in g.nodes() {
            assert_eq!(
                cache.view(u).fingerprint(),
                store.view(&g, u).fingerprint(),
                "store and cache must extract identical views"
            );
        }
    }

    #[test]
    fn traced_run_matches_plain_run() {
        use crate::Alg1;
        let g = generators::cycle(16);
        let k = 4;
        let plain = route(&g, k, &Alg1, NodeId(0), NodeId(8), &Default::default());
        let traced = route_traced(&g, k, &Alg1, NodeId(0), NodeId(8), &Default::default());
        assert_eq!(traced.report.route, plain.route);
        assert_eq!(traced.rules.len(), traced.report.hops());
        // Rules come from Algorithm 1's named table.
        for rule in &traced.rules {
            assert!(
                ["case-1", "S1", "S2", "S3", "U1", "U2", "U3", "US1", "US2", "US3"].contains(rule),
                "unknown rule {rule}"
            );
        }
    }

    #[test]
    fn report_edge_use_accounting() {
        let r = RunReport {
            status: RunStatus::Delivered,
            route: vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)],
            shortest: 1,
            k: 1,
        };
        assert_eq!(r.max_directed_edge_uses(), 2);
    }
}
