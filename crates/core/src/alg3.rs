//! Algorithm 3 (§5.3): origin-oblivious, predecessor-oblivious
//! (⌊n/2⌋)-local routing that follows a shortest path (Theorem 8).
//!
//! With `k >= ⌊n/2⌋`, Lemma 12 shows that at every node either the
//! destination is visible or the view has exactly one *constrained*
//! active component. In the latter case every path to the destination
//! passes through the constraint vertices, so walking toward the
//! furthest constraint vertex shrinks `dist(u, t)` by one per hop:
//! `dist(u, t) = dist(u, w) + dist(w, t)`. No preprocessing, no
//! predecessor, no origin — and the route is a shortest path (dilation 1).

use locality_graph::Label;

use crate::error::RoutingError;
use crate::model::{Awareness, Packet};
use crate::traits::LocalRouter;
use crate::view::LocalView;

/// Algorithm 3: fully oblivious shortest-path routing for `k >= ⌊n/2⌋`.
///
/// ```
/// use local_routing::{engine, Alg3, LocalRouter};
/// use locality_graph::{generators, NodeId};
///
/// let g = generators::path(11);
/// let k = Alg3.min_locality(11); // 5
/// let report = engine::route(&g, k, &Alg3, NodeId(0), NodeId(10), &Default::default());
/// assert!(report.status.is_delivered());
/// assert_eq!(report.dilation(), Some(1.0)); // always a shortest path
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Alg3;

impl LocalRouter for Alg3 {
    fn name(&self) -> &'static str {
        "algorithm-3"
    }

    fn awareness(&self) -> Awareness {
        Awareness::OBLIVIOUS
    }

    fn min_locality(&self, n: usize) -> u32 {
        (n / 2) as u32
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        // Case 1: the destination is visible — step along a shortest path.
        if let Some(t_node) = view.node_by_label(packet.target) {
            if t_node == view.center() {
                return Err(RoutingError::ProtocolViolation(
                    "asked to forward a message already at its destination".into(),
                ));
            }
            let step = view.shortest_step_toward(t_node).ok_or_else(|| {
                RoutingError::ProtocolViolation("destination visible but unreachable".into())
            })?;
            return Ok(view.label(step));
        }

        // Case 2: by Lemma 12 the raw view has exactly one constrained
        // active component; walk toward its furthest constraint vertex.
        let analysis = view.raw_analysis();
        let mut constrained = analysis.active_components().filter(|c| c.is_constrained());
        let comp = constrained
            .next()
            .ok_or(RoutingError::NoConstrainedComponent)?;
        if constrained.next().is_some() || analysis.active_components().count() > 1 {
            return Err(RoutingError::TooManyActiveComponents {
                found: analysis.active_components().count(),
                max: 1,
            });
        }
        let far = comp
            .constraint_vertices
            .iter()
            .copied()
            .max_by_key(|w| {
                (
                    view.dist_from_center(*w).unwrap_or(0),
                    std::cmp::Reverse(view.label(*w)),
                )
            })
            .expect("constrained component has a constraint vertex");
        let step = view.shortest_step_toward(far).ok_or_else(|| {
            RoutingError::ProtocolViolation("constraint vertex unreachable in view".into())
        })?;
        Ok(view.label(step))
    }

    fn decide_explained(
        &self,
        packet: &Packet,
        view: &LocalView,
    ) -> Result<(Label, &'static str), RoutingError> {
        let label = self.decide(packet, view)?;
        let rule = if view.contains_label(packet.target) {
            "case-1"
        } else {
            "case-2"
        };
        Ok((label, rule))
    }
}

/// The Corollary 5 router: origin-aware, predecessor-oblivious.
///
/// "Providing knowledge of the origin cannot hinder an origin-oblivious
/// routing algorithm" — this router *is* Algorithm 3, but declares
/// [`Awareness::PREDECESSOR_OBLIVIOUS`] so the engine hands it the
/// origin (which it then has no reason to consult). It exists to make
/// the fourth cell of Table 1 an explicit artifact with its own
/// threshold `T(n) = ⌊n/2⌋`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Alg3OriginAware;

impl LocalRouter for Alg3OriginAware {
    fn name(&self) -> &'static str {
        "algorithm-3-origin-aware"
    }

    fn awareness(&self) -> Awareness {
        Awareness::PREDECESSOR_OBLIVIOUS
    }

    fn min_locality(&self, n: usize) -> u32 {
        Alg3.min_locality(n)
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        // Degrade gracefully to the origin-oblivious decision.
        let oblivious = Packet {
            origin: None,
            ..*packet
        };
        Alg3.decide(&oblivious, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use locality_graph::rng::DetRng;
    use locality_graph::{generators, permute, NodeId};

    fn assert_shortest_everywhere(g: &locality_graph::Graph, k: u32) {
        let m = engine::delivery_matrix(g, k, &Alg3);
        assert!(
            m.all_delivered(),
            "algorithm-3 failed on {g:?} with k={k}: {:?}",
            m.failures.first()
        );
        if let Some((d, s, t)) = m.worst_dilation {
            assert_eq!(d, 1.0, "route not shortest at ({s},{t}) on {g:?}");
        }
    }

    #[test]
    fn shortest_paths_on_basic_families() {
        for g in [
            generators::path(9),
            generators::path(10),
            generators::cycle(9),
            generators::cycle(10),
            generators::spider(3, 3),
            generators::lollipop(6, 4),
            generators::theta(&[2, 3, 4]),
            generators::grid(3, 3),
        ] {
            assert_shortest_everywhere(&g, Alg3.min_locality(g.node_count()));
        }
    }

    #[test]
    fn survives_label_permutations() {
        let mut rng = DetRng::seed_from_u64(271828);
        for _ in 0..12 {
            let n = rng.gen_range(2..15);
            let g = permute::random_relabel(&generators::random_mixed(n, &mut rng), &mut rng);
            assert_shortest_everywhere(&g, Alg3.min_locality(n));
        }
    }

    #[test]
    fn threshold_is_floor_n_over_2() {
        assert_eq!(Alg3.min_locality(9), 4);
        assert_eq!(Alg3.min_locality(10), 5);
    }

    #[test]
    fn below_threshold_fails_on_a_path() {
        // Theorem 3's intuition: with k < ⌊n/2⌋ on a path, s cannot tell
        // which side t is on; Algorithm 3 errs or loops on one side.
        let g = generators::path(10);
        let k = Alg3.min_locality(10) - 1;
        let m = engine::delivery_matrix(&g, k, &Alg3);
        assert!(!m.all_delivered());
    }

    #[test]
    fn corollary5_router_matches_alg3_exactly() {
        let mut rng = DetRng::seed_from_u64(55);
        for _ in 0..8 {
            let n = rng.gen_range(2..14);
            let g = generators::random_mixed(n, &mut rng);
            let k = Alg3OriginAware.min_locality(n);
            for s in g.nodes() {
                for t in g.nodes().filter(|&t| t != s) {
                    let a = engine::route(&g, k, &Alg3, s, t, &Default::default());
                    let b = engine::route(&g, k, &Alg3OriginAware, s, t, &Default::default());
                    assert!(b.status.is_delivered());
                    assert_eq!(a.route, b.route);
                }
            }
        }
    }

    #[test]
    fn corollary5_awareness_is_predecessor_oblivious() {
        assert_eq!(
            Alg3OriginAware.awareness(),
            Awareness::PREDECESSOR_OBLIVIOUS
        );
    }

    #[test]
    fn is_fully_oblivious() {
        // decide() must work with both optional fields masked.
        let g = generators::path(9);
        let view = LocalView::extract(&g, NodeId(0), 4);
        let p = Packet {
            origin: None,
            target: Label(8),
            predecessor: None,
        };
        assert_eq!(Alg3.decide(&p, &view).unwrap(), Label(1));
    }
}
