//! Error type for routing decisions.

use std::error::Error;
use std::fmt;

use locality_graph::Label;

/// A local routing function's ways of failing.
///
/// A correct algorithm run with `k` at or above its threshold never
/// returns an error; errors surface exactly when the paper's structural
/// preconditions are violated — most commonly because `k` is below the
/// algorithm's feasibility threshold `T(n)` and the view is too small to
/// satisfy Propositions 1–3.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// The view shows more active components than the algorithm's
    /// proposition allows (Prop. 1: ≤3 for `k >= n/4`; Prop. 2: ≤2 for
    /// `k >= n/3`; Prop. 3/Lemma 12: one constrained for `k >= n/2`).
    TooManyActiveComponents {
        /// Active components observed in the view.
        found: usize,
        /// Maximum the algorithm can handle.
        max: usize,
    },
    /// The destination is beyond the view but no active component exists
    /// to forward into — the view cannot be a k-neighbourhood of a
    /// connected graph containing the destination unless `k` is too
    /// small for the algorithm's guarantees.
    NoActiveComponent,
    /// Algorithm 3 needed a constrained active component (Lemma 12) but
    /// found none.
    NoConstrainedComponent,
    /// The router requires origin awareness but the packet's origin was
    /// masked. Indicates an engine/router awareness mismatch.
    MissingOrigin,
    /// The packet's predecessor is not a neighbour of the current node,
    /// or another impossible input was supplied.
    ProtocolViolation(String),
    /// The destination label does not exist anywhere the router can see
    /// and no forwarding rule applies.
    Unroutable(Label),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::TooManyActiveComponents { found, max } => write!(
                f,
                "view has {found} active components but the algorithm handles at most {max} \
                 (k is below the feasibility threshold)"
            ),
            RoutingError::NoActiveComponent => {
                write!(
                    f,
                    "destination outside view and no active component to enter"
                )
            }
            RoutingError::NoConstrainedComponent => {
                write!(f, "no constrained active component (k below n/2 threshold)")
            }
            RoutingError::MissingOrigin => {
                write!(
                    f,
                    "origin-aware router received a packet with masked origin"
                )
            }
            RoutingError::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            RoutingError::Unroutable(l) => write!(f, "no rule can route toward {l}"),
        }
    }
}

impl Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_cause() {
        let e = RoutingError::TooManyActiveComponents { found: 4, max: 3 };
        assert!(e.to_string().contains("4 active"));
        assert!(RoutingError::NoActiveComponent
            .to_string()
            .contains("active"));
        assert!(RoutingError::Unroutable(Label(9))
            .to_string()
            .contains("v9"));
    }
}
