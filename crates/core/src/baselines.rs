//! Baseline routing strategies the paper motivates against.
//!
//! * [`RightHandRule`] — the classic tree traversal (§5.1, Fig. 7):
//!   succeeds on trees, but on graphs with cycles longer than `2k` it can
//!   orbit forever without ever bringing the destination into view.
//! * [`LowestRankForward`] — a predecessor-oblivious strawman defeated
//!   by essentially everything; used by adversary tests.
//! * [`random_walk`] — the randomized comparator (§3, Chen et al.):
//!   delivery is guaranteed only in expectation, with route lengths far
//!   beyond the deterministic algorithms' dilation bounds.

use locality_graph::rng::DetRng;
use locality_graph::{Graph, Label, NodeId};

use crate::error::RoutingError;
use crate::model::{Awareness, Packet};
use crate::traits::LocalRouter;
use crate::view::LocalView;

/// The right-hand rule: when the destination is out of view, forward to
/// the next neighbour in label-cyclic order after the one that delivered
/// the message (first send: lowest label).
///
/// Guarantees delivery on trees for any `k >= 1`; defeated by cycles of
/// length `> 2k` that keep the destination out of every visited view
/// (Fig. 7B).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RightHandRule;

impl LocalRouter for RightHandRule {
    fn name(&self) -> &'static str {
        "right-hand-rule"
    }

    fn awareness(&self) -> Awareness {
        Awareness::ORIGIN_OBLIVIOUS
    }

    fn min_locality(&self, _n: usize) -> u32 {
        // No n at which it is universally correct; 1 suffices on trees.
        1
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        if let Some(t_node) = view.node_by_label(packet.target) {
            if t_node == view.center() {
                return Err(RoutingError::ProtocolViolation(
                    "asked to forward a message already at its destination".into(),
                ));
            }
            if let Some(step) = view.shortest_step_toward(t_node) {
                return Ok(view.label(step));
            }
        }
        let mut nbrs: Vec<NodeId> = view.center_neighbors().to_vec();
        if nbrs.is_empty() {
            return Err(RoutingError::Unroutable(packet.target));
        }
        view.sort_by_label(&mut nbrs);
        let v = packet
            .predecessor
            .and_then(|l| view.node_by_label(l))
            .and_then(|p| nbrs.iter().position(|&x| x == p));
        let next = match v {
            None => nbrs[0],
            Some(i) => nbrs[(i + 1) % nbrs.len()],
        };
        Ok(view.label(next))
    }
}

/// Strawman: always forward to the lowest-label active neighbour (or
/// lowest-label neighbour if no component analysis is wanted — we use
/// the raw neighbours). Predecessor-oblivious and memoryless, so it
/// bounces forever on almost anything; exists to give the adversary
/// machinery an easy victim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowestRankForward;

impl LocalRouter for LowestRankForward {
    fn name(&self) -> &'static str {
        "lowest-rank-forward"
    }

    fn awareness(&self) -> Awareness {
        Awareness::OBLIVIOUS
    }

    fn min_locality(&self, _n: usize) -> u32 {
        1
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        if let Some(t_node) = view.node_by_label(packet.target) {
            if let Some(step) = view.shortest_step_toward(t_node) {
                return Ok(view.label(step));
            }
        }
        let mut nbrs: Vec<NodeId> = view.center_neighbors().to_vec();
        if nbrs.is_empty() {
            return Err(RoutingError::Unroutable(packet.target));
        }
        view.sort_by_label(&mut nbrs);
        Ok(view.label(nbrs[0]))
    }
}

/// Greedy ring router: forward to the neighbour whose label is closest
/// to the target in circular label distance mod `n`, tie-break lowest
/// label. Memoryless and fully oblivious — each decision reads only the
/// immediate neighbour labels, so `min_locality` is 1 and per-hop cost
/// is `O(degree)` independent of `k` and `n`.
///
/// On a [`ring_lattice(n, c)`](locality_graph::generators::ring_lattice)
/// with identity labels every hop strictly reduces ring distance (the
/// `±c` chord covers distance `c` until the target is within one hop),
/// so delivery is guaranteed in `⌈d/c⌉` hops. That makes it the
/// workhorse of large-`n` simulator sweeps: provisioning at `k = 1` is
/// linear in `n`, and routes are long enough to exercise the arena and
/// scheduler without depending on `k`-neighbourhood extraction cost.
/// On graphs whose labels are not `0..n` ring positions it is just a
/// strawman that the loop detector catches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingGreedy {
    /// Ring modulus: labels are positions on `Z_n`.
    pub n: u32,
}

impl RingGreedy {
    /// Greedy router over circular label space `Z_n`.
    pub fn new(n: u32) -> RingGreedy {
        RingGreedy { n }
    }

    fn ring_dist(&self, a: u32, b: u32) -> u32 {
        // u64 arithmetic and a defensive modulus keep labels outside
        // `0..n` (a misused router, not a lattice) from wrapping.
        let n = u64::from(self.n.max(1));
        let a = u64::from(a) % n;
        let b = u64::from(b) % n;
        let cw = (b + n - a) % n;
        cw.min(n - cw) as u32
    }
}

impl LocalRouter for RingGreedy {
    fn name(&self) -> &'static str {
        "ring-greedy"
    }

    fn awareness(&self) -> Awareness {
        Awareness::OBLIVIOUS
    }

    fn min_locality(&self, _n: usize) -> u32 {
        1
    }

    fn decide(&self, packet: &Packet, view: &LocalView) -> Result<Label, RoutingError> {
        view.center_neighbors()
            .iter()
            .map(|&v| view.label(v))
            .min_by_key(|l| (self.ring_dist(l.value(), packet.target.value()), l.value()))
            .ok_or(RoutingError::Unroutable(packet.target))
    }
}

/// A uniform random walk from `s` to `t`: the memoryless randomized
/// baseline. Returns the number of hops taken, or `None` if `max_steps`
/// was exhausted first.
pub fn random_walk(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    rng: &mut DetRng,
) -> Option<usize> {
    let mut current = s;
    for step in 0..=max_steps {
        if current == t {
            return Some(step);
        }
        let nbrs = g.neighbors(current);
        if nbrs.is_empty() {
            return None;
        }
        current = nbrs[rng.gen_range(0..nbrs.len())];
    }
    None
}

/// Convenience: the label a router would pick, for rule-table dumps.
pub fn decision_label<R: LocalRouter>(
    router: &R,
    view: &LocalView,
    origin: Option<Label>,
    target: Label,
    predecessor: Option<Label>,
) -> Result<Label, RoutingError> {
    let packet = Packet {
        origin,
        target,
        predecessor,
    }
    .masked(router.awareness());
    router.decide(&packet, view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, RunStatus};
    use locality_graph::generators;

    #[test]
    fn right_hand_rule_delivers_on_trees() {
        for g in [
            generators::path(10),
            generators::spider(4, 3),
            generators::binary_tree(4),
            generators::caterpillar(5, 2),
        ] {
            for k in [1u32, 2, 3] {
                let m = engine::delivery_matrix(&g, k, &RightHandRule);
                assert!(
                    m.all_delivered(),
                    "right-hand rule failed on tree {g:?} k={k}: {:?}",
                    m.failures.first()
                );
            }
        }
    }

    #[test]
    fn right_hand_rule_defeated_by_long_cycle() {
        // Fig. 7B: a long cycle with the destination at the end of a
        // tail of length k + 1, so it never enters any visited
        // k-neighbourhood: the orbit always re-enters node 19 from node
        // 0, whose cyclic successor is 18 — the tail is never taken.
        let g = generators::lollipop(20, 3);
        let k = 2;
        let s = NodeId(10); // on the cycle, far from the tail
        let t = NodeId(22); // tail tip, distance 3 > k from the cycle
        let r = engine::route(&g, k, &RightHandRule, s, t, &Default::default());
        assert_eq!(r.status, RunStatus::LoopDetected);
    }

    #[test]
    fn lowest_rank_forward_loops_quickly() {
        let g = generators::path(8);
        let r = engine::route(
            &g,
            1,
            &LowestRankForward,
            NodeId(3),
            NodeId(7),
            &Default::default(),
        );
        assert_eq!(r.status, RunStatus::LoopDetected);
    }

    #[test]
    fn ring_greedy_delivers_on_ring_lattices_at_k1() {
        for (n, c) in [(12usize, 1usize), (30, 3), (64, 5)] {
            let g = generators::ring_lattice(n, c);
            let m = engine::delivery_matrix(&g, 1, &RingGreedy::new(n as u32));
            assert!(
                m.all_delivered(),
                "ring greedy failed on C_{n}(1..={c}): {:?}",
                m.failures.first()
            );
        }
    }

    #[test]
    fn ring_greedy_takes_chord_sized_steps() {
        // Distance 20 with chord reach 4: ⌈20/4⌉ = 5 hops.
        let g = generators::ring_lattice(40, 4);
        let r = engine::route(
            &g,
            1,
            &RingGreedy::new(40),
            NodeId(0),
            NodeId(20),
            &Default::default(),
        );
        assert_eq!(r.status, RunStatus::Delivered);
        assert_eq!(r.hops(), 5);
    }

    #[test]
    fn random_walk_eventually_arrives() {
        let g = generators::cycle(8);
        let mut rng = DetRng::seed_from_u64(5);
        let hops = random_walk(&g, NodeId(0), NodeId(4), 100_000, &mut rng);
        assert!(hops.is_some());
        assert!(hops.unwrap() >= 4);
    }

    #[test]
    fn random_walk_times_out_gracefully() {
        let g = generators::path(50);
        let mut rng = DetRng::seed_from_u64(5);
        assert_eq!(random_walk(&g, NodeId(0), NodeId(49), 3, &mut rng), None);
    }
}
