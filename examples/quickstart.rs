//! Quickstart: route a message with every algorithm on a small network.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use local_routing::{engine, Alg1, Alg1B, Alg2, Alg3, LocalRouter};
use locality_graph::{generators, NodeId};

fn main() {
    // A "ring road with a cul-de-sac": a 12-cycle with a 4-node tail.
    let g = generators::lollipop(12, 4);
    let n = g.node_count();
    let (s, t) = (NodeId(3), NodeId(15)); // cycle node -> tail tip

    println!("network: lollipop(12) + tail(4), n = {n}");
    println!("routing from {s} to {t} (shortest path: {} hops)\n", {
        locality_graph::traversal::distance(&g, s, t).unwrap()
    });

    for router in [&Alg1 as &dyn LocalRouter, &Alg1B, &Alg2, &Alg3] {
        // Every algorithm declares its own feasibility threshold T(n).
        let k = router.min_locality(n);
        let report = engine::route(&g, k, &router, s, t, &Default::default());
        println!(
            "{:<14} k = {:>2} ({:<32}) -> {:?} in {} hops (dilation {:.2})",
            router.name(),
            k,
            router.awareness().to_string(),
            report.status,
            report.hops(),
            report.dilation().unwrap_or(f64::NAN),
        );
    }

    println!("\nBelow the threshold the guarantees evaporate:");
    let k = Alg3.min_locality(n) - 2;
    let report = engine::route(&g, k, &Alg3, s, t, &Default::default());
    println!(
        "algorithm-3 at k = {k}: {:?} after {} hops",
        report.status,
        report.hops()
    );
}
