//! Sweep the locality parameter `k` and watch each algorithm cross its
//! feasibility threshold `T(n)` — the paper's Table 1, live.
//!
//! ```sh
//! cargo run --example threshold_explorer [n]
//! ```

use local_routing::{engine, Alg1, Alg2, Alg3, LocalRouter};
use locality_graph::rng::DetRng;
use locality_graph::{generators, permute};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let mut rng = DetRng::seed_from_u64(42);

    // A gauntlet of graphs on n nodes.
    let mut suite = Vec::new();
    for _ in 0..30 {
        suite.push(permute::random_relabel(
            &generators::random_mixed(n, &mut rng),
            &mut rng,
        ));
    }
    suite.push(generators::cycle(n));
    suite.push(generators::path(n));

    println!(
        "fraction of (graph, s, t) pairs delivered, {} graphs on n = {n}:\n",
        suite.len()
    );
    println!(
        "{:>4}  {:>12} {:>12} {:>12}",
        "k", "algorithm-1", "algorithm-2", "algorithm-3"
    );
    for k in 1..=(n as u32 / 2 + 1) {
        print!("{k:>4}");
        for router in [&Alg1 as &dyn LocalRouter, &Alg2, &Alg3] {
            let mut total = 0usize;
            let mut ok = 0usize;
            for g in &suite {
                let m = engine::delivery_matrix(g, k, &router);
                total += m.runs;
                ok += m.runs - m.failures.len();
            }
            let frac = ok as f64 / total as f64;
            let marker = if k == router.min_locality(n) {
                "*"
            } else {
                " "
            };
            print!("  {:>10.1}%{marker}", 100.0 * frac);
        }
        println!();
    }
    println!("\n(* = the algorithm's threshold T(n); expect 100% at and beyond it,");
    println!(" matching Table 1: T(n) = n/4, n/3, n/2)");
}
