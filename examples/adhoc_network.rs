//! An ad hoc wireless-style scenario on the distributed simulator: many
//! concurrent flows, a link failure mid-run, and per-node congestion —
//! the deployment the paper's introduction motivates.
//!
//! ```sh
//! cargo run --example adhoc_network
//! ```

use local_routing::{Alg1, LocalRouter};
use locality_graph::rng::DetRng;
use locality_graph::{generators, permute, NodeId};
use locality_sim::NetworkBuilder;

fn main() {
    let mut rng = DetRng::seed_from_u64(2009);
    // A 5x6 "field" of nodes with grid connectivity and scrambled
    // labels (node names tell routers nothing about positions).
    let g = permute::random_relabel(&generators::grid(5, 6), &mut rng);
    let n = g.node_count();
    let k = Alg1.min_locality(n);
    println!("ad hoc field: 5x6 grid, n = {n}, k = {k} (algorithm-1)\n");

    let mut net = NetworkBuilder::new(&g, k).build(Alg1);

    // Phase 1: 40 random flows.
    for _ in 0..40 {
        let s = NodeId(rng.gen_range(0..n as u32));
        let mut t = s;
        while t == s {
            t = NodeId(rng.gen_range(0..n as u32));
        }
        net.send(s, t);
    }
    net.run_until_quiet();
    let m1 = net.metrics();
    println!(
        "phase 1: {} messages, delivered {} ({:.0}%), mean route {:.2} hops, max node load {}",
        m1.sent,
        m1.delivered,
        100.0 * m1.delivery_ratio(),
        m1.mean_hops().unwrap_or(0.0),
        m1.max_node_load
    );

    // Phase 2: a link fails; affected nodes rediscover their
    // neighbourhoods and traffic keeps flowing.
    let (a, b) = g.edges().nth(7).expect("grid has edges");
    net.set_edge(a, b, false)
        .expect("grids stay connected after one edge loss");
    println!("\nlink {{{a},{b}}} failed; k-neighbourhoods re-provisioned\n");
    for _ in 0..40 {
        let s = NodeId(rng.gen_range(0..n as u32));
        let mut t = s;
        while t == s {
            t = NodeId(rng.gen_range(0..n as u32));
        }
        net.send(s, t);
    }
    net.run_until_quiet();
    let m2 = net.metrics();
    println!(
        "phase 2 totals: {} messages, delivered {} ({:.0}%), mean route {:.2} hops",
        m2.sent,
        m2.delivered,
        100.0 * m2.delivery_ratio(),
        m2.mean_hops().unwrap_or(0.0),
    );

    // Busiest relays.
    let mut loads: Vec<(u64, NodeId)> = g.nodes().map(|u| (net.node(u).forwarded, u)).collect();
    loads.sort_unstable_by(|x, y| y.cmp(x));
    println!("\nbusiest relays:");
    for (load, u) in loads.into_iter().take(5) {
        println!("  {u} ({}) forwarded {load} messages", g.label(u));
    }
}
