//! Walk through the paper's dilation story: the lower bound S(k) =
//! 2n/k - 3, the tight instances for Algorithms 1 and 1B, and the
//! shortest-path behaviour of Algorithms 2 and 3.
//!
//! ```sh
//! cargo run --example dilation_tour
//! ```

use local_routing::{engine, Alg1, Alg1B, Alg2, Alg3, LocalRouter};
use locality_adversary::{thm4, tight};
use locality_graph::generators;

fn main() {
    let n = 64;
    println!("== the lower bound (Theorem 4), n = {n} ==");
    for k in [n as u32 / 4, n as u32 / 3 - 1, n as u32 / 2 - 1] {
        println!(
            "  k = {k:>2}: no algorithm beats dilation {:.3} (S(k) = {:.3})",
            thm4::dilation_lower_bound(n, k),
            thm4::s_of_k(n, k)
        );
    }

    println!("\n== Algorithm 1 on its nemesis (Fig. 13) ==");
    for n in [16usize, 32, 64, 128] {
        let inst = tight::fig13(n);
        let (hops, d) = inst.measure(&Alg1);
        println!(
            "  n = {n:>3}, k = {:>2}: route {hops:>4} vs shortest {:>2} -> dilation {d:.3} (paper: {:.3})",
            inst.k,
            inst.shortest,
            7.0 - 96.0 / (n as f64 + 12.0)
        );
    }

    println!("\n== Algorithm 1B on its nemesis (Fig. 17) ==");
    for n in [28usize, 40, 64, 128] {
        let inst = tight::fig17(n);
        let (hops, d) = inst.measure(&Alg1B);
        println!(
            "  n = {n:>3}, k = {:>2}: route {hops:>4} vs shortest {:>2} -> dilation {d:.3} (paper: {:.3})",
            inst.k,
            inst.shortest,
            6.0 - 48.0 / (n as f64 + 4.0)
        );
    }

    println!("\n== Algorithms 2 and 3 stay comfortable ==");
    let g = generators::cycle(60);
    let k2 = Alg2.min_locality(60);
    let m2 = engine::delivery_matrix(&g, k2, &Alg2);
    println!(
        "  algorithm-2 on cycle(60), k = {k2}: worst dilation {:.3} (< 3, Theorem 7)",
        m2.worst_dilation.map(|(d, _, _)| d).unwrap_or(1.0)
    );
    let k3 = Alg3.min_locality(60);
    let m3 = engine::delivery_matrix(&g, k3, &Alg3);
    println!(
        "  algorithm-3 on cycle(60), k = {k3}: worst dilation {:.3} (= 1, Theorem 8)",
        m3.worst_dilation.map(|(d, _, _)| d).unwrap_or(1.0)
    );
}
