//! Watch the impossibility proofs play out: enumerate every routing
//! strategy the model allows and see each one defeated (Theorems 1–3).
//!
//! ```sh
//! cargo run --example adversary_demo
//! ```

use local_routing::{Alg1, Alg2, Alg3, LocalRouter};
use locality_adversary::{defeat, thm1, thm2};

fn main() {
    let n = 23;

    println!("== Theorem 1: origin-aware, predecessor-aware, k < (n+1)/4 ==");
    println!("(hub strategies on the three-graph family, n = {n}, k = 5)\n");
    for row in thm1::table3(n, 5) {
        let fails: Vec<String> = row
            .outcomes
            .iter()
            .enumerate()
            .filter(|&(_, ok)| !ok)
            .map(|(i, _)| format!("G{}", i + 1))
            .collect();
        println!(
            "  strategy (P{} P{} P{} P{}) is defeated by {}",
            row.cycle_order[0] + 1,
            row.cycle_order[1] + 1,
            row.cycle_order[2] + 1,
            row.cycle_order[3] + 1,
            fails.join(", ")
        );
    }

    println!("\n== Theorem 2: origin-oblivious, k < (n+1)/3 (n = 20, k = 6) ==\n");
    for row in thm2::table4(20, 6) {
        let fails: Vec<String> = row
            .outcomes
            .iter()
            .enumerate()
            .filter(|&(_, ok)| !ok)
            .map(|(i, _)| format!("G{}", i + 1))
            .collect();
        println!(
            "  (P{} P{} P{}) starting toward {} is defeated by {}",
            row.cycle_order[0] + 1,
            row.cycle_order[1] + 1,
            row.cycle_order[2] + 1,
            ["a", "b", "c"][row.initial],
            fails.join(", ")
        );
    }

    println!("\n== The black-box adversary vs our own algorithms below threshold ==\n");
    for router in [&Alg1 as &dyn LocalRouter, &Alg2, &Alg3] {
        let t = router.min_locality(n);
        match defeat::find_defeat(&router, n, t - 1) {
            Some(d) => println!(
                "  {} at k = {} < T(n) = {t}: defeated by the {} family ({:?}, message lost en route {} -> {})",
                router.name(),
                t - 1,
                d.family,
                d.status,
                d.s,
                d.t
            ),
            None => println!("  {} at k = {}: survived (unexpected!)", router.name(), t - 1),
        }
        match defeat::find_defeat(&router, n, t) {
            None => println!(
                "  {} at k = T(n) = {t}: undefeated, as Theorem guarantees\n",
                router.name()
            ),
            Some(d) => println!(
                "  {} at k = {t}: DEFEATED by {} (bug!)\n",
                router.name(),
                d.family
            ),
        }
    }
}
