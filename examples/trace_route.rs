//! Replay the paper's worst-case route narrations rule by rule — now
//! through the observability stack: each instance runs in the
//! distributed simulator with a recorder attached, the JSONL trace is
//! folded into a route witness, the witness narrates every forwarding
//! decision, and the replay checker re-derives each decision from
//! `G_k(u)` to certify the trace.
//!
//! ```sh
//! cargo run --example trace_route
//! ```

use local_routing::{Alg1, Alg1B, LocalRouter};
use locality_adversary::tight;
use locality_graph::{traversal, Graph, NodeId};
use locality_obs::{collect_witnesses, parse_trace, Level, Recorder, RouteWitness};
use locality_sim::{replay, NetworkBuilder};

/// Runs one (s, t) route through a traced simulator and returns the
/// witness plus the raw trace text it was folded from.
fn witness_route(
    g: &Graph,
    k: u32,
    router: impl LocalRouter + Send + 'static,
    s: NodeId,
    t: NodeId,
) -> (RouteWitness, String) {
    let mut net = NetworkBuilder::new(g, k)
        .recorder(Recorder::new(Level::Hops))
        .build(router);
    net.send(s, t);
    net.run_until_quiet();
    let text = String::from_utf8(net.finish_trace()).expect("trace is ASCII JSONL");
    let events = parse_trace(&text).expect("recorder emits well-formed lines");
    let w = collect_witnesses(&events)
        .into_iter()
        .next()
        .expect("one send, one witness");
    (w, text)
}

/// Narrates a witness's hops, collapsing runs of the same rule.
fn show(g: &Graph, w: &RouteWitness) {
    let label = |raw: u32| g.label(NodeId(raw));
    let mut i = 0usize;
    while i < w.hops.len() {
        let rule = &w.hops[i].rule;
        let mut j = i;
        while j + 1 < w.hops.len() && w.hops[j + 1].rule == *rule {
            j += 1;
        }
        if i == j {
            println!(
                "  {:>7}  {} -> {}",
                rule,
                label(w.hops[i].node),
                label(w.hops[i].to)
            );
        } else {
            println!(
                "  {:>7}  {} -> … -> {}   ({} hops)",
                rule,
                label(w.hops[i].node),
                label(w.hops[j].to),
                j - i + 1
            );
        }
        i = j + 1;
    }
    let hops = w.route().len().saturating_sub(1);
    let shortest = traversal::distance(g, NodeId(w.s), NodeId(w.t)).unwrap_or(0);
    println!(
        "  => {} hops, shortest {}, dilation {:.3}",
        hops,
        shortest,
        if shortest == 0 {
            f64::NAN
        } else {
            hops as f64 / f64::from(shortest)
        }
    );
}

/// Replay-certifies the witness and reports what was re-derived.
fn certify(g: &Graph, k: u32, router: &impl LocalRouter, w: &RouteWitness) {
    match replay::verify_witnesses(g, k, router, std::slice::from_ref(w)) {
        Ok(report) => println!(
            "  replay: {} decision(s) re-derived from G_k(u), dilation bound holds\n",
            report.hops_checked
        ),
        Err(e) => println!("  replay: REFUTED — {e}\n"),
    }
}

fn main() {
    let inst = tight::fig13(32);
    println!(
        "Fig. 13 (n = 32, k = {}): Algorithm 1 versus its nemesis —",
        inst.k
    );
    let (w, text) = witness_route(&inst.graph, inst.k, Alg1, inst.s, inst.t);
    if let Some(line) = text.lines().find(|l| l.contains("\"ev\":\"hop\"")) {
        println!("  (a raw witness line: {line})");
    }
    show(&inst.graph, &w);
    certify(&inst.graph, inst.k, &Alg1, &w);

    println!("…and Algorithm 1B on the same graph (pre-emptive reversal):");
    let (w, _) = witness_route(&inst.graph, inst.k, Alg1B, inst.s, inst.t);
    show(&inst.graph, &w);
    certify(&inst.graph, inst.k, &Alg1B, &w);

    let inst = tight::fig17(40);
    println!(
        "Fig. 17 (n = 40, k = {}): Algorithm 1B versus its own nemesis —",
        inst.k
    );
    let (w, _) = witness_route(&inst.graph, inst.k, Alg1B, inst.s, inst.t);
    show(&inst.graph, &w);
    certify(&inst.graph, inst.k, &Alg1B, &w);
}
