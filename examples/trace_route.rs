//! Replay the paper's worst-case route narrations rule by rule: the
//! executable version of "Rule S2 is applied at s, Rule U3 at c, …".
//!
//! ```sh
//! cargo run --example trace_route
//! ```

use local_routing::{engine, Alg1, Alg1B};
use locality_adversary::tight;

fn show(trace: &engine::TracedRun, g: &locality_graph::Graph) {
    let mut last_rule = "";
    let mut run_start = 0usize;
    let flush = |rule: &str, from: usize, to: usize, route: &[locality_graph::NodeId]| {
        if rule.is_empty() {
            return;
        }
        if to - from == 1 {
            println!(
                "  {:>7}  {} -> {}",
                rule,
                g.label(route[from]),
                g.label(route[from + 1])
            );
        } else {
            println!(
                "  {:>7}  {} -> … -> {}   ({} hops)",
                rule,
                g.label(route[from]),
                g.label(route[to]),
                to - from
            );
        }
    };
    for (i, rule) in trace.rules.iter().enumerate() {
        if *rule != last_rule {
            flush(last_rule, run_start, i, &trace.report.route);
            last_rule = rule;
            run_start = i;
        }
    }
    flush(last_rule, run_start, trace.rules.len(), &trace.report.route);
    println!(
        "  => {} hops, shortest {}, dilation {:.3}\n",
        trace.report.hops(),
        trace.report.shortest,
        trace.report.dilation().unwrap_or(f64::NAN)
    );
}

fn main() {
    let inst = tight::fig13(32);
    println!(
        "Fig. 13 (n = 32, k = {}): Algorithm 1 versus its nemesis —",
        inst.k
    );
    let trace = engine::route_traced(
        &inst.graph,
        inst.k,
        &Alg1,
        inst.s,
        inst.t,
        &Default::default(),
    );
    show(&trace, &inst.graph);

    println!("…and Algorithm 1B on the same graph (pre-emptive reversal):");
    let trace = engine::route_traced(
        &inst.graph,
        inst.k,
        &Alg1B,
        inst.s,
        inst.t,
        &Default::default(),
    );
    show(&trace, &inst.graph);

    let inst = tight::fig17(40);
    println!(
        "Fig. 17 (n = 40, k = {}): Algorithm 1B versus its own nemesis —",
        inst.k
    );
    let trace = engine::route_traced(
        &inst.graph,
        inst.k,
        &Alg1B,
        inst.s,
        inst.t,
        &Default::default(),
    );
    show(&trace, &inst.graph);
}
